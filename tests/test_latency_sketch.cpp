// LatencySketch: relative-error guarantee against Cdf ground truth, exact
// mergeability (associativity/commutativity), bounded memory via collapsing,
// and the zero/negative-value edge cases.
#include "common/latency_sketch.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"

namespace rlir::common {
namespace {

constexpr double kAccuracy = 0.01;

LatencySketch make_sketch(double accuracy = kAccuracy, std::size_t max_bins = 2048) {
  return LatencySketch(LatencySketchConfig{accuracy, max_bins});
}

/// Asserts the sketch's quantile answers are within the configured relative
/// error of the true order statistic, across a grid of quantiles.
void expect_quantiles_within_bound(const LatencySketch& sketch, std::vector<double> samples,
                                   double accuracy) {
  Cdf cdf(std::move(samples));
  const auto& sorted = cdf.sorted_samples();
  for (double q : {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0}) {
    // The sketch targets the order statistic at rank floor(q * (n-1)).
    const auto rank = static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1));
    const double truth = sorted[rank];
    const double got = sketch.quantile(q);
    if (truth < 1e-3) {
      EXPECT_LT(got, 1e-3) << "q=" << q;
    } else {
      EXPECT_NEAR(got, truth, accuracy * truth * (1.0 + 1e-9))
          << "q=" << q << " truth=" << truth;
    }
  }
}

TEST(LatencySketchTest, EmptySketch) {
  const auto s = make_sketch();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.quantile(0.5), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.bin_count(), 0u);
}

TEST(LatencySketchTest, SingleValue) {
  auto s = make_sketch();
  s.add(12345.0);
  EXPECT_EQ(s.count(), 1u);
  for (double q : {0.0, 0.5, 1.0}) {
    EXPECT_NEAR(s.quantile(q), 12345.0, kAccuracy * 12345.0);
  }
  EXPECT_EQ(s.min(), 12345.0);
  EXPECT_EQ(s.max(), 12345.0);
}

TEST(LatencySketchTest, InvalidAccuracyThrows) {
  EXPECT_THROW(LatencySketch(LatencySketchConfig{0.0, 128}), std::invalid_argument);
  EXPECT_THROW(LatencySketch(LatencySketchConfig{1.0, 128}), std::invalid_argument);
  EXPECT_THROW(LatencySketch(LatencySketchConfig{-0.5, 128}), std::invalid_argument);
}

TEST(LatencySketchTest, UniformDistributionWithinBound) {
  Xoshiro256 rng(1);
  auto s = make_sketch();
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.uniform(10.0, 1e6);
    samples.push_back(v);
    s.add(v);
  }
  expect_quantiles_within_bound(s, samples, kAccuracy);
}

TEST(LatencySketchTest, LognormalDistributionWithinBound) {
  Xoshiro256 rng(2);
  auto s = make_sketch();
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.lognormal(std::log(80e3), 1.2);
    samples.push_back(v);
    s.add(v);
  }
  expect_quantiles_within_bound(s, samples, kAccuracy);
}

TEST(LatencySketchTest, AdversarialWideRangeWithinBound) {
  // Nine orders of magnitude plus duplicate spikes: the bucketed-histogram
  // failure mode (fixed absolute bucket edges) that relative-error bins fix.
  Xoshiro256 rng(3);
  auto s = make_sketch(kAccuracy, 8192);
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) {
    const double exponent = rng.uniform(0.0, 9.0);
    const double v = std::pow(10.0, exponent);
    samples.push_back(v);
    s.add(v);
  }
  for (int i = 0; i < 5000; ++i) {  // heavy duplicate mass at one value
    samples.push_back(512.0);
    s.add(512.0);
  }
  expect_quantiles_within_bound(s, samples, kAccuracy);
}

TEST(LatencySketchTest, BimodalGapWithinBound) {
  auto s = make_sketch();
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) {
    samples.push_back(100.0);
    s.add(100.0);
    samples.push_back(1e8);
    s.add(1e8);
  }
  expect_quantiles_within_bound(s, samples, kAccuracy);
}

TEST(LatencySketchTest, NonFiniteValuesAreDropped) {
  auto s = make_sketch();
  s.add(1000.0);
  s.add(std::numeric_limits<double>::infinity());
  s.add(-std::numeric_limits<double>::infinity());
  s.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.max(), 1000.0);
  EXPECT_EQ(s.sum(), 1000.0);
  EXPECT_NEAR(s.quantile(0.99), 1000.0, kAccuracy * 1000.0);
}

TEST(LatencySketchTest, ZerosAndNegativesLandInZeroBin) {
  auto s = make_sketch();
  s.add(0.0);
  s.add(-50.0);  // interpolation artifact: treated as ~0 latency
  s.add(1000.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_EQ(s.zero_count(), 2u);
  EXPECT_EQ(s.quantile(0.0), 0.0);
  EXPECT_NEAR(s.quantile(1.0), 1000.0, kAccuracy * 1000.0);
  EXPECT_EQ(s.min(), -50.0);  // min/max stay faithful to what was added
}

TEST(LatencySketchTest, CountSumMeanMinMax) {
  auto s = make_sketch();
  RunningStats truth;
  Xoshiro256 rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(1.0, 1e5);
    s.add(v);
    truth.add(v);
  }
  EXPECT_EQ(s.count(), truth.count());
  EXPECT_NEAR(s.sum(), truth.sum(), 1e-6 * truth.sum());
  EXPECT_NEAR(s.mean(), truth.mean(), 1e-6 * truth.mean());
  EXPECT_EQ(s.min(), truth.min());
  EXPECT_EQ(s.max(), truth.max());
}

TEST(LatencySketchTest, WeightedAddMatchesRepeatedAdd) {
  auto a = make_sketch();
  auto b = make_sketch();
  a.add(777.0, 5);
  for (int i = 0; i < 5; ++i) b.add(777.0);
  EXPECT_EQ(a.bins(), b.bins());
  EXPECT_EQ(a.count(), b.count());
}

TEST(LatencySketchTest, MergeEqualsUnion) {
  Xoshiro256 rng(5);
  auto whole = make_sketch();
  auto part1 = make_sketch();
  auto part2 = make_sketch();
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.lognormal(10.0, 1.0);
    whole.add(v);
    (i % 2 == 0 ? part1 : part2).add(v);
  }
  part1.merge(part2);
  // Merge is exact: bin-for-bin identical to sketching the union stream.
  EXPECT_EQ(part1.bins(), whole.bins());
  EXPECT_EQ(part1.count(), whole.count());
  EXPECT_EQ(part1.zero_count(), whole.zero_count());
  EXPECT_EQ(part1.min(), whole.min());
  EXPECT_EQ(part1.max(), whole.max());
  EXPECT_NEAR(part1.sum(), whole.sum(), 1e-6 * std::abs(whole.sum()));
}

TEST(LatencySketchTest, MergeCommutative) {
  Xoshiro256 rng(6);
  auto a1 = make_sketch();
  auto b1 = make_sketch();
  for (int i = 0; i < 2000; ++i) a1.add(rng.uniform(1.0, 1e4));
  for (int i = 0; i < 2000; ++i) b1.add(rng.lognormal(8.0, 2.0));
  auto a2 = b1;  // b then a
  auto merged_ab = a1;
  merged_ab.merge(b1);
  a2.merge(a1);
  EXPECT_EQ(merged_ab.bins(), a2.bins());
  EXPECT_EQ(merged_ab.count(), a2.count());
}

TEST(LatencySketchTest, MergeAssociative) {
  Xoshiro256 rng(7);
  auto a = make_sketch();
  auto b = make_sketch();
  auto c = make_sketch();
  for (int i = 0; i < 1000; ++i) {
    a.add(rng.uniform(1.0, 100.0));
    b.add(rng.uniform(50.0, 5000.0));
    c.add(rng.lognormal(6.0, 1.5));
  }
  auto left = a;  // (a + b) + c
  left.merge(b);
  left.merge(c);
  auto bc = b;  // a + (b + c)
  bc.merge(c);
  auto right = a;
  right.merge(bc);
  EXPECT_EQ(left.bins(), right.bins());
  EXPECT_EQ(left.count(), right.count());
}

TEST(LatencySketchTest, MergeAccuracyMismatchThrows) {
  auto a = make_sketch(0.01);
  auto b = make_sketch(0.02);
  b.add(1.0);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(LatencySketchTest, CollapsingBoundsMemoryAndPreservesTail) {
  auto s = make_sketch(kAccuracy, 64);
  std::vector<double> samples;
  Xoshiro256 rng(8);
  for (int i = 0; i < 50000; ++i) {
    const double v = std::pow(10.0, rng.uniform(0.0, 9.0));
    samples.push_back(v);
    s.add(v);
  }
  EXPECT_LE(s.bin_count(), 64u);
  EXPECT_GT(s.collapses(), 0u);
  // Collapsing folds low bins upward: the upper tail stays in-bound.
  Cdf cdf(samples);
  const auto& sorted = cdf.sorted_samples();
  for (double q : {0.95, 0.99, 0.999}) {
    const auto rank = static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1));
    const double truth = sorted[rank];
    EXPECT_NEAR(s.quantile(q), truth, kAccuracy * truth * (1.0 + 1e-9)) << "q=" << q;
  }
  // Memory is O(bins), not O(samples).
  EXPECT_LT(s.approx_bytes(), 64 * 64 + sizeof(LatencySketch));
}

TEST(LatencySketchTest, FromPartsRoundTrip) {
  Xoshiro256 rng(9);
  auto s = make_sketch();
  for (int i = 0; i < 3000; ++i) s.add(rng.lognormal(9.0, 1.0));
  s.add(0.0, 7);
  auto rebuilt = LatencySketch::from_parts(s.config(), s.zero_count(), s.sum(), s.min(),
                                           s.max(), s.bins());
  EXPECT_EQ(rebuilt.bins(), s.bins());
  EXPECT_EQ(rebuilt.count(), s.count());
  EXPECT_EQ(rebuilt.zero_count(), s.zero_count());
  EXPECT_EQ(rebuilt.quantile(0.9), s.quantile(0.9));
}

}  // namespace
}  // namespace rlir::common
