// Unit tests: sim/tap.h — observation points (fanout + recording taps).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "sim/tap.h"
#include "timebase/time.h"

namespace rlir::sim {
namespace {

using timebase::TimePoint;

net::Packet packet_with_seq(std::uint64_t seq, TimePoint ts = TimePoint::zero()) {
  net::Packet p;
  p.seq = seq;
  p.ts = ts;
  return p;
}

// Tap that logs which tap instance saw which sequence number, for ordering
// assertions across a fanout.
class SequenceLogTap final : public PacketTap {
 public:
  SequenceLogTap(int id, std::vector<std::pair<int, std::uint64_t>>* log)
      : id_(id), log_(log) {}

  void on_packet(const net::Packet& packet, TimePoint) override {
    log_->emplace_back(id_, packet.seq);
  }

 private:
  int id_;
  std::vector<std::pair<int, std::uint64_t>>* log_;
};

TEST(RecordingTap, RecordsPacketsInArrivalOrder) {
  RecordingTap tap;
  tap.on_packet(packet_with_seq(3, TimePoint(10)), TimePoint(10));
  tap.on_packet(packet_with_seq(1, TimePoint(20)), TimePoint(20));
  tap.on_packet(packet_with_seq(7, TimePoint(30)), TimePoint(30));

  ASSERT_EQ(tap.packets().size(), 3u);
  EXPECT_EQ(tap.packets()[0].seq, 3u);
  EXPECT_EQ(tap.packets()[1].seq, 1u);
  EXPECT_EQ(tap.packets()[2].seq, 7u);
}

TEST(RecordingTap, CopiesThePacketNotAReference) {
  RecordingTap tap;
  net::Packet p = packet_with_seq(1);
  tap.on_packet(p, TimePoint::zero());
  p.seq = 999;  // mutating the original must not affect the recording
  EXPECT_EQ(tap.packets()[0].seq, 1u);
}

TEST(TapFanout, EmptyFanoutIsANoOp) {
  TapFanout fanout;
  fanout.on_packet(packet_with_seq(1), TimePoint::zero());  // must not crash
}

TEST(TapFanout, DeliversToEveryTapInAttachmentOrder) {
  std::vector<std::pair<int, std::uint64_t>> log;
  SequenceLogTap a(1, &log), b(2, &log);

  TapFanout fanout;
  fanout.add(&a);
  fanout.add(&b);
  fanout.on_packet(packet_with_seq(10), TimePoint(1));
  fanout.on_packet(packet_with_seq(11), TimePoint(2));

  const std::vector<std::pair<int, std::uint64_t>> expected = {
      {1, 10}, {2, 10}, {1, 11}, {2, 11}};
  EXPECT_EQ(log, expected);
}

TEST(TapFanout, NestsAsATapItself) {
  // Fanout is itself a PacketTap, so tap trees compose.
  RecordingTap leaf;
  TapFanout inner;
  inner.add(&leaf);
  TapFanout outer;
  outer.add(&inner);

  outer.on_packet(packet_with_seq(5), TimePoint::zero());
  ASSERT_EQ(leaf.packets().size(), 1u);
  EXPECT_EQ(leaf.packets()[0].seq, 5u);
}

TEST(TapFanout, SameTapAttachedTwiceSeesPacketTwice) {
  RecordingTap leaf;
  TapFanout fanout;
  fanout.add(&leaf);
  fanout.add(&leaf);
  fanout.on_packet(packet_with_seq(8), TimePoint::zero());
  EXPECT_EQ(leaf.packets().size(), 2u);
}

TEST(DelaySketchTap, RecordsTrueDelayOfRegularPacketsOnly) {
  DelaySketchTap tap;
  auto regular = packet_with_seq(1, TimePoint(5'000));
  regular.injected_at = TimePoint(1'000);  // true delay 4us
  tap.on_packet(regular, regular.ts);

  auto reference = regular;
  reference.kind = net::PacketKind::kReference;
  tap.on_packet(reference, reference.ts);
  auto cross = regular;
  cross.kind = net::PacketKind::kCross;
  tap.on_packet(cross, cross.ts);

  EXPECT_EQ(tap.sketch().count(), 1u);
  const double accuracy = tap.sketch().config().relative_accuracy;
  EXPECT_NEAR(tap.sketch().quantile(0.5), 4'000.0, accuracy * 4'000.0);
}

}  // namespace
}  // namespace rlir::sim
