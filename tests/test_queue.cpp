// Unit tests: sim/queue.h — FIFO output-port queue model.
#include <gtest/gtest.h>

#include "sim/queue.h"

namespace rlir::sim {
namespace {

using timebase::Duration;
using timebase::TimePoint;

net::Packet packet_of(std::uint32_t bytes, std::int64_t ts_ns = 0) {
  net::Packet p;
  p.size_bytes = bytes;
  p.ts = TimePoint(ts_ns);
  p.injected_at = p.ts;
  return p;
}

QueueConfig fast_config() {
  QueueConfig cfg;
  cfg.link_bps = 10e9;                                   // 0.8 ns per byte
  cfg.processing_delay = Duration::nanoseconds(100);
  cfg.capacity_bytes = 10'000;
  return cfg;
}

TEST(FifoQueue, RejectsBadConfig) {
  QueueConfig cfg;
  cfg.link_bps = 0.0;
  EXPECT_THROW(FifoQueue{cfg}, std::invalid_argument);
}

TEST(FifoQueue, IdleQueueDepartureIsProcessingPlusTransmission) {
  FifoQueue q(fast_config());
  // 1000B at 10G = 800ns tx; +100ns processing.
  const auto dep = q.offer(packet_of(1000), TimePoint(0));
  ASSERT_TRUE(dep);
  EXPECT_EQ(dep->ns(), 900);
}

TEST(FifoQueue, BackToBackPacketsQueueBehindEachOther) {
  FifoQueue q(fast_config());
  const auto d1 = q.offer(packet_of(1000), TimePoint(0));
  const auto d2 = q.offer(packet_of(1000), TimePoint(0));
  const auto d3 = q.offer(packet_of(500), TimePoint(0));
  ASSERT_TRUE(d1 && d2 && d3);
  EXPECT_EQ(d1->ns(), 900);
  // Second waits for the transmitter: starts at 900, +800 tx.
  EXPECT_EQ(d2->ns(), 1700);
  EXPECT_EQ(d3->ns(), 2100);
}

TEST(FifoQueue, LatePacketSeesIdleServer) {
  FifoQueue q(fast_config());
  (void)q.offer(packet_of(1000), TimePoint(0));          // departs at 900
  const auto dep = q.offer(packet_of(1000), TimePoint(10'000));
  ASSERT_TRUE(dep);
  EXPECT_EQ(dep->ns(), 10'900);  // no queueing
}

TEST(FifoQueue, TailDropWhenFull) {
  QueueConfig cfg = fast_config();
  cfg.capacity_bytes = 2'500;
  FifoQueue q(cfg);
  EXPECT_TRUE(q.offer(packet_of(1000), TimePoint(0)));
  EXPECT_TRUE(q.offer(packet_of(1000), TimePoint(0)));
  // 2000B queued; a 1000B packet exceeds 2500B capacity => dropped.
  EXPECT_FALSE(q.offer(packet_of(1000), TimePoint(0)));
  // A 500B packet still fits.
  EXPECT_TRUE(q.offer(packet_of(500), TimePoint(0)));

  EXPECT_EQ(q.stats().dropped_packets, 1u);
  EXPECT_EQ(q.stats().dropped_bytes, 1000u);
  EXPECT_EQ(q.stats().arrived_packets, 4u);
  EXPECT_EQ(q.stats().departed_packets, 3u);
  EXPECT_NEAR(q.stats().loss_rate(), 0.25, 1e-12);
}

TEST(FifoQueue, OccupancyDrainsOverTime) {
  FifoQueue q(fast_config());
  (void)q.offer(packet_of(1000), TimePoint(0));  // departs 900
  (void)q.offer(packet_of(1000), TimePoint(0));  // departs 1700
  EXPECT_EQ(q.occupancy_bytes(TimePoint(0)), 2000u);
  EXPECT_EQ(q.occupancy_bytes(TimePoint(1000)), 1000u);  // first departed
  EXPECT_EQ(q.occupancy_bytes(TimePoint(2000)), 0u);
}

TEST(FifoQueue, DropsDoNotBlockLaterTraffic) {
  QueueConfig cfg = fast_config();
  cfg.capacity_bytes = 1'000;
  FifoQueue q(cfg);
  EXPECT_TRUE(q.offer(packet_of(1000), TimePoint(0)));
  EXPECT_FALSE(q.offer(packet_of(1000), TimePoint(0)));
  // After the first drains, new arrivals are accepted again.
  EXPECT_TRUE(q.offer(packet_of(1000), TimePoint(5'000)));
}

TEST(FifoQueue, OutOfOrderArrivalThrows) {
  FifoQueue q(fast_config());
  (void)q.offer(packet_of(100), TimePoint(1'000));
  EXPECT_THROW((void)q.offer(packet_of(100), TimePoint(999)), std::logic_error);
}

TEST(FifoQueue, UtilizationTracksBusyTime) {
  FifoQueue q(fast_config());
  // 10 x 1000B = 8000ns busy.
  for (int i = 0; i < 10; ++i) (void)q.offer(packet_of(1000), TimePoint(i * 10));
  EXPECT_NEAR(q.utilization(TimePoint(16'000)), 0.5, 0.01);
  EXPECT_EQ(q.utilization(TimePoint(0)), 0.0);
}

TEST(FifoQueue, MaxOccupancyTracked) {
  FifoQueue q(fast_config());
  (void)q.offer(packet_of(1000), TimePoint(0));
  (void)q.offer(packet_of(1500), TimePoint(0));
  EXPECT_EQ(q.stats().max_occupancy_bytes, 2500u);
}

TEST(FifoQueue, ResetClearsDynamicState) {
  FifoQueue q(fast_config());
  (void)q.offer(packet_of(1000), TimePoint(500));
  q.reset();
  EXPECT_EQ(q.stats().arrived_packets, 0u);
  // After reset, earlier times are legal again.
  const auto dep = q.offer(packet_of(1000), TimePoint(0));
  ASSERT_TRUE(dep);
  EXPECT_EQ(dep->ns(), 900);
}

// Work-conservation sweep: total busy time equals the sum of transmission
// times of accepted packets, independent of arrival pattern.
class QueueLoadSweep : public ::testing::TestWithParam<int> {};

TEST_P(QueueLoadSweep, WorkConservation) {
  const int gap_ns = GetParam();
  QueueConfig cfg = fast_config();
  cfg.capacity_bytes = 1'000'000;
  FifoQueue q(cfg);
  std::int64_t expected_busy = 0;
  for (int i = 0; i < 1000; ++i) {
    const std::uint32_t bytes = 64 + static_cast<std::uint32_t>((i * 37) % 1400);
    if (q.offer(packet_of(bytes), TimePoint(static_cast<std::int64_t>(i) * gap_ns))) {
      expected_busy += timebase::transmission_time(bytes, cfg.link_bps).ns();
    }
  }
  EXPECT_EQ(q.stats().busy_time.ns(), expected_busy);
  EXPECT_EQ(q.stats().dropped_packets, 0u);
}

INSTANTIATE_TEST_SUITE_P(Gaps, QueueLoadSweep, ::testing::Values(100, 700, 2000, 10'000));

}  // namespace
}  // namespace rlir::sim
