// QueryCoordinator::collect_trace: the cross-process reassembly must be the
// exact union of the participating rings — the coordinator's own spans
// (merge, legs, and the agent-facing clients' query hops, which share its
// recorder) plus every agent's kTraceSpans answer — filtered to one trace,
// with honest eviction accounting, and without the pull itself polluting
// any ring (kTraceSpans is untraced end to end).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "obs/span.h"
#include "transport/agent.h"
#include "transport/byte_stream.h"
#include "transport/coordinator.h"

namespace rlir::transport {
namespace {

constexpr std::size_t kAgents = 3;

struct TracedFleet {
  std::vector<std::unique_ptr<obs::SpanRecorder>> agent_spans;
  std::vector<std::unique_ptr<CollectorAgent>> agents;
  obs::SpanRecorder coord_spans;
  std::unique_ptr<QueryCoordinator> coord;

  TracedFleet() {
    QueryCoordinatorConfig cfg;
    cfg.instruments.spans = &coord_spans;
    coord = std::make_unique<QueryCoordinator>(cfg);
    for (std::size_t i = 0; i < kAgents; ++i) {
      agent_spans.push_back(std::make_unique<obs::SpanRecorder>());
      CollectorAgentConfig acfg;
      acfg.instruments.spans = agent_spans[i].get();
      agents.push_back(std::make_unique<CollectorAgent>(acfg));
      coord->add_agent([this, i]() {
        auto [client_end, agent_end] = make_loopback();
        agents[i]->add_connection(std::move(agent_end));
        return std::move(client_end);
      });
    }
    coord->set_drive([this] {
      for (auto& agent : agents) agent->poll();
    });
  }
};

std::multiset<std::uint64_t> span_ids(const AssembledTrace& trace) {
  std::multiset<std::uint64_t> ids;
  for (const auto& [name, spans] : trace.processes) {
    for (const auto& span : spans) ids.insert(span.span_id);
  }
  return ids;
}

TEST(TracingAssemblyTest, AssemblyEqualsUnionOfRings) {
  TracedFleet fleet;
  (void)fleet.coord->fleet();
  const std::uint64_t trace_id = fleet.coord->last_trace_id();
  ASSERT_NE(trace_id, 0u);

  const auto assembled = fleet.coord->collect_trace();
  EXPECT_EQ(assembled.trace_id, trace_id);
  EXPECT_EQ(assembled.agents_answered, kAgents);
  EXPECT_EQ(assembled.spans_dropped, 0u);
  ASSERT_EQ(assembled.processes.size(), 1 + kAgents);
  EXPECT_EQ(assembled.processes[0].first, "coordinator");
  EXPECT_EQ(assembled.processes[1].first, "agent0");

  // The exact union: what the assembly returned == what the rings retain.
  std::multiset<std::uint64_t> expected;
  for (const auto& span : fleet.coord_spans.for_trace(trace_id)) {
    expected.insert(span.span_id);
  }
  for (const auto& recorder : fleet.agent_spans) {
    for (const auto& span : recorder->for_trace(trace_id)) expected.insert(span.span_id);
  }
  EXPECT_EQ(span_ids(assembled), expected);
  EXPECT_EQ(assembled.size(), expected.size());

  // Every assembled span belongs to the requested trace.
  for (const auto& [name, spans] : assembled.processes) {
    for (const auto& span : spans) EXPECT_EQ(span.trace_id, trace_id);
  }
}

TEST(TracingAssemblyTest, ExplicitTraceIdMatchesDefault) {
  TracedFleet fleet;
  (void)fleet.coord->fleet();
  const std::uint64_t trace_id = fleet.coord->last_trace_id();

  const auto by_default = fleet.coord->collect_trace();
  const auto by_id = fleet.coord->collect_trace(trace_id);
  EXPECT_EQ(span_ids(by_default), span_ids(by_id));
}

TEST(TracingAssemblyTest, SecondFanOutGetsItsOwnTrace) {
  TracedFleet fleet;
  (void)fleet.coord->fleet();
  const std::uint64_t first = fleet.coord->last_trace_id();
  (void)fleet.coord->per_agent_stats();
  const std::uint64_t second = fleet.coord->last_trace_id();
  ASSERT_NE(first, 0u);
  ASSERT_NE(second, 0u);
  EXPECT_NE(first, second);

  // Each assembly is scoped to its trace; ids never leak across.
  const auto ids_first = span_ids(fleet.coord->collect_trace(first));
  const auto ids_second = span_ids(fleet.coord->collect_trace(second));
  std::vector<std::uint64_t> overlap;
  std::set_intersection(ids_first.begin(), ids_first.end(), ids_second.begin(),
                        ids_second.end(), std::back_inserter(overlap));
  EXPECT_TRUE(overlap.empty());
  EXPECT_FALSE(ids_first.empty());
  EXPECT_FALSE(ids_second.empty());
}

TEST(TracingAssemblyTest, UnknownTraceAssemblesEmpty) {
  TracedFleet fleet;
  (void)fleet.coord->fleet();
  const auto assembled = fleet.coord->collect_trace(0xdeadbeefdeadbeefULL);
  EXPECT_EQ(assembled.size(), 0u);
  EXPECT_EQ(assembled.agents_answered, kAgents);
}

TEST(TracingAssemblyTest, SortedSpansAreOrderedByStart) {
  TracedFleet fleet;
  (void)fleet.coord->fleet();
  const auto assembled = fleet.coord->collect_trace();
  const auto sorted = assembled.sorted_spans();
  ASSERT_EQ(sorted.size(), assembled.size());
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_LE(sorted[i - 1].start_ns, sorted[i].start_ns);
  }
}

TEST(TracingAssemblyTest, PullLeavesEveryRingUnpolluted) {
  TracedFleet fleet;
  (void)fleet.coord->fleet();
  const std::uint64_t trace_id = fleet.coord->last_trace_id();

  const auto before = fleet.coord_spans.for_trace(trace_id).size();
  std::size_t agents_before = 0;
  for (const auto& r : fleet.agent_spans) agents_before += r->for_trace(trace_id).size();

  // Repeated pulls: kTraceSpans is never traced, so the trace stays frozen.
  (void)fleet.coord->collect_trace();
  (void)fleet.coord->collect_trace();

  EXPECT_EQ(fleet.coord_spans.for_trace(trace_id).size(), before);
  std::size_t agents_after = 0;
  for (const auto& r : fleet.agent_spans) agents_after += r->for_trace(trace_id).size();
  EXPECT_EQ(agents_after, agents_before);
}

}  // namespace
}  // namespace rlir::transport
