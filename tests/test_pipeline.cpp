// Unit tests: sim/pipeline.h — the Figure-3 two-hop environment.
#include <gtest/gtest.h>

#include "rli/sender.h"
#include "sim/pipeline.h"
#include "sim/tap.h"
#include "timebase/clock.h"
#include "trace/synthetic.h"

namespace rlir::sim {
namespace {

using timebase::Duration;
using timebase::TimePoint;

std::vector<net::Packet> make_stream(double bps, std::uint64_t seed,
                                     net::PacketKind kind = net::PacketKind::kRegular,
                                     Duration duration = Duration::milliseconds(20)) {
  trace::SyntheticConfig cfg;
  cfg.duration = duration;
  cfg.offered_bps = bps;
  cfg.seed = seed;
  cfg.kind = kind;
  if (kind == net::PacketKind::kCross) {
    cfg.src_pool = net::Ipv4Prefix(net::Ipv4Address(172, 16, 0, 0), 16);
    cfg.first_seq = 1'000'000;
  }
  return trace::SyntheticTraceGenerator(cfg).generate_all();
}

TEST(TwoHopPipeline, ConservesPackets) {
  TwoHopPipeline pipeline{PipelineConfig{}};
  const auto regular = make_stream(1e9, 1);
  const auto cross = make_stream(1e9, 2, net::PacketKind::kCross);
  const auto result = pipeline.run(regular, cross);

  EXPECT_EQ(result.regular_offered, regular.size());
  EXPECT_EQ(result.cross_offered, cross.size());
  EXPECT_EQ(result.regular_delivered + result.regular_dropped, result.regular_offered);
  EXPECT_EQ(result.cross_delivered + result.cross_dropped, result.cross_admitted);
  // No injector configured: all cross admitted, no references.
  EXPECT_EQ(result.cross_admitted, result.cross_offered);
  EXPECT_EQ(result.reference_injected, 0u);
}

TEST(TwoHopPipeline, DeliveredPacketsGainDelay) {
  TwoHopPipeline pipeline{PipelineConfig{}};
  RecordingTap tap;
  pipeline.add_egress_tap(&tap);
  const auto result = pipeline.run(make_stream(1e9, 3), {});
  ASSERT_GT(tap.packets().size(), 0u);
  EXPECT_EQ(tap.packets().size(), result.regular_delivered);
  for (const auto& p : tap.packets()) {
    // Two processing delays + two transmissions: > 1us at 10G.
    EXPECT_GT(p.true_delay().ns(), 1'000);
    EXPECT_LT(p.true_delay().ns(), 10'000'000);
  }
}

TEST(TwoHopPipeline, EgressOrderIsTimeSorted) {
  TwoHopPipeline pipeline{PipelineConfig{}};
  RecordingTap tap;
  pipeline.add_egress_tap(&tap);
  (void)pipeline.run(make_stream(3e9, 4), make_stream(3e9, 5, net::PacketKind::kCross));
  TimePoint last = TimePoint::zero();
  for (const auto& p : tap.packets()) {
    EXPECT_GE(p.ts, last);
    last = p.ts;
  }
}

TEST(TwoHopPipeline, IngressTapSeesOnlyRegularStream) {
  TwoHopPipeline pipeline{PipelineConfig{}};
  RecordingTap ingress;
  pipeline.add_ingress_tap(&ingress);
  const auto regular = make_stream(1e9, 6);
  (void)pipeline.run(regular, make_stream(1e9, 7, net::PacketKind::kCross));
  EXPECT_EQ(ingress.packets().size(), regular.size());
  for (const auto& p : ingress.packets()) {
    EXPECT_EQ(p.kind, net::PacketKind::kRegular);
  }
}

TEST(TwoHopPipeline, CrossInjectorThins) {
  TwoHopPipeline pipeline{PipelineConfig{}};
  CrossTrafficConfig cross_cfg;
  cross_cfg.selection_probability = 0.25;
  CrossTrafficInjector injector(cross_cfg);
  pipeline.set_cross_injector(&injector);
  const auto cross = make_stream(2e9, 8, net::PacketKind::kCross);
  const auto result = pipeline.run({}, cross);
  EXPECT_NEAR(static_cast<double>(result.cross_admitted) /
                  static_cast<double>(result.cross_offered),
              0.25, 0.05);
}

TEST(TwoHopPipeline, ReferenceInjectionAndDelivery) {
  TwoHopPipeline pipeline{PipelineConfig{}};
  timebase::PerfectClock clock;
  rli::SenderConfig cfg;
  cfg.static_gap = 50;
  rli::RliSender sender(cfg, &clock);
  pipeline.set_reference_injector(&sender);

  RecordingTap tap;
  pipeline.add_egress_tap(&tap);
  const auto regular = make_stream(1e9, 9);
  const auto result = pipeline.run(regular, {});

  EXPECT_EQ(result.reference_injected, regular.size() / 50);
  EXPECT_EQ(result.reference_delivered + result.reference_dropped,
            result.reference_injected);
  std::uint64_t refs_seen = 0;
  for (const auto& p : tap.packets()) {
    if (p.is_reference()) ++refs_seen;
  }
  EXPECT_EQ(refs_seen, result.reference_delivered);
}

TEST(TwoHopPipeline, OverloadDropsAtBottleneck) {
  PipelineConfig cfg;
  cfg.switch2.link_bps = 1e9;  // bottleneck: 10x slower than the offered load
  cfg.switch2.capacity_bytes = 20'000;
  TwoHopPipeline pipeline{cfg};
  const auto result = pipeline.run(make_stream(3e9, 10), {});
  EXPECT_GT(result.regular_dropped, 0u);
  EXPECT_GT(result.regular_loss_rate(), 0.2);
  EXPECT_GT(result.switch2.dropped_packets, 0u);
  EXPECT_EQ(result.switch1.dropped_packets, 0u);
}

TEST(TwoHopPipeline, UtilizationGrowsWithCrossLoad) {
  TwoHopPipeline light{PipelineConfig{}};
  const auto r_light = light.run(make_stream(1e9, 11), {});
  TwoHopPipeline heavy{PipelineConfig{}};
  const auto r_heavy =
      heavy.run(make_stream(1e9, 11), make_stream(5e9, 12, net::PacketKind::kCross));
  EXPECT_GT(r_heavy.bottleneck_utilization(), r_light.bottleneck_utilization() + 0.2);
}

TEST(TwoHopPipeline, EmptyInputsAreSafe) {
  TwoHopPipeline pipeline{PipelineConfig{}};
  const auto result = pipeline.run({}, {});
  EXPECT_EQ(result.regular_offered, 0u);
  EXPECT_EQ(result.cross_offered, 0u);
  EXPECT_EQ(result.last_departure, TimePoint::zero());
}

TEST(TapFanout, DeliversToAllChildren) {
  RecordingTap a;
  RecordingTap b;
  TapFanout fanout;
  fanout.add(&a);
  fanout.add(&b);
  net::Packet p;
  p.seq = 9;
  fanout.on_packet(p, TimePoint(0));
  ASSERT_EQ(a.packets().size(), 1u);
  ASSERT_EQ(b.packets().size(), 1u);
  EXPECT_EQ(a.packets()[0].seq, 9u);
}

}  // namespace
}  // namespace rlir::sim
