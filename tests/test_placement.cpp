// Unit tests: topo/placement.h — Section 3.1 deployment complexity.
#include <gtest/gtest.h>

#include "topo/placement.h"

namespace rlir::topo {
namespace {

TEST(Placement, PaperFormulasAtK4) {
  // Paper: k+2, k(k+2)/2, (k/2)^2(k+1).
  EXPECT_EQ(rlir_instances(4, DeploymentGranularity::kInterfacePair), 6u);
  EXPECT_EQ(rlir_instances(4, DeploymentGranularity::kTorPair), 12u);
  EXPECT_EQ(rlir_instances(4, DeploymentGranularity::kAllTorPairs), 20u);
}

TEST(Placement, PaperFormulasAtK8) {
  EXPECT_EQ(rlir_instances(8, DeploymentGranularity::kInterfacePair), 10u);
  EXPECT_EQ(rlir_instances(8, DeploymentGranularity::kTorPair), 40u);
  EXPECT_EQ(rlir_instances(8, DeploymentGranularity::kAllTorPairs), 144u);
}

TEST(Placement, RejectsInvalidK) {
  EXPECT_THROW((void)rlir_instances(3, DeploymentGranularity::kTorPair), std::invalid_argument);
  EXPECT_THROW((void)full_deployment_instances(0), std::invalid_argument);
}

TEST(Placement, FullDeploymentExactCount) {
  // k=4: 20 switches, k(k-1)=12 instances each => 240.
  EXPECT_EQ(full_deployment_instances(4), 240u);
  // k=8: 80 switches * 56 = 4480.
  EXPECT_EQ(full_deployment_instances(8), 4480u);
}

TEST(Placement, FullDeploymentGrowsAsK4) {
  // The paper's O(k^4): doubling k multiplies the count by ~16.
  const double r1 = static_cast<double>(full_deployment_instances(16)) /
                    static_cast<double>(full_deployment_instances(8));
  const double r2 = static_cast<double>(full_deployment_instances(32)) /
                    static_cast<double>(full_deployment_instances(16));
  EXPECT_NEAR(r1, 16.0, 3.0);
  EXPECT_NEAR(r2, 16.0, 2.0);
}

TEST(Placement, RlirIsAsymptoticallyCheaper) {
  for (const int k : {4, 8, 16, 48}) {
    const PlacementRow row = placement_row(k);
    EXPECT_LT(row.interface_pair, row.tor_pair);
    EXPECT_LT(row.tor_pair, row.all_tor_pairs);
    EXPECT_LT(row.all_tor_pairs, row.full_deployment);
  }
  // Savings improve with scale: the ratio shrinks as k grows.
  EXPECT_GT(placement_row(4).savings_ratio(), placement_row(16).savings_ratio());
  EXPECT_GT(placement_row(16).savings_ratio(), placement_row(48).savings_ratio());
}

TEST(Placement, RowIsConsistentWithFormulas) {
  const PlacementRow row = placement_row(8);
  EXPECT_EQ(row.k, 8);
  EXPECT_EQ(row.interface_pair, rlir_instances(8, DeploymentGranularity::kInterfacePair));
  EXPECT_EQ(row.tor_pair, rlir_instances(8, DeploymentGranularity::kTorPair));
  EXPECT_EQ(row.all_tor_pairs, rlir_instances(8, DeploymentGranularity::kAllTorPairs));
  EXPECT_EQ(row.full_deployment, full_deployment_instances(8));
}

TEST(Placement, InterfacePairPlan) {
  const FatTree topo(4);
  const auto plan = plan_interface_pair(topo, topo.tor(0, 0), topo.tor(3, 0));
  // Paper: k+2 = 6 instances for one interface pair.
  EXPECT_EQ(plan.instance_count, 6u);
  // Hosts: the two ToRs plus k/2 cores.
  ASSERT_EQ(plan.instance_nodes.size(), 4u);
  EXPECT_EQ(plan.instance_nodes[0], topo.tor(0, 0));
  EXPECT_EQ(plan.instance_nodes[1], topo.tor(3, 0));
  EXPECT_EQ(plan.instance_nodes[2].tier, Tier::kCore);
  // Two segments per covered core (up + down), paper's T1-C1 / C1-T7 split.
  EXPECT_EQ(plan.segments.size(), 4u);
  EXPECT_EQ(plan.segments[0], "T1-C1");
  EXPECT_EQ(plan.segments[1], "C1-T7");
}

TEST(Placement, PlanValidatesEndpoints) {
  const FatTree topo(4);
  EXPECT_THROW(plan_interface_pair(topo, topo.core(0), topo.tor(3, 0)),
               std::invalid_argument);
  EXPECT_THROW(plan_interface_pair(topo, topo.tor(0, 0), topo.tor(0, 1)),
               std::invalid_argument);
}

// Sweep: formulas evaluated across fabric sizes stay self-consistent.
class PlacementSweep : public ::testing::TestWithParam<int> {};

TEST_P(PlacementSweep, FormulaValues) {
  const int k = GetParam();
  const auto uk = static_cast<std::uint64_t>(k);
  EXPECT_EQ(rlir_instances(k, DeploymentGranularity::kInterfacePair), uk + 2);
  EXPECT_EQ(rlir_instances(k, DeploymentGranularity::kTorPair), uk * (uk + 2) / 2);
  EXPECT_EQ(rlir_instances(k, DeploymentGranularity::kAllTorPairs),
            (uk / 2) * (uk / 2) * (uk + 1));
}

INSTANTIATE_TEST_SUITE_P(Ks, PlacementSweep, ::testing::Values(2, 4, 8, 16, 24, 48, 64));

}  // namespace
}  // namespace rlir::topo
