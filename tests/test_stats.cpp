// Unit tests: common/stats.h — streaming moments, CDFs, relative error.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"

namespace rlir::common {
namespace {

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs = {1.0, 2.0, 4.5, -3.0, 7.25, 0.0, 2.0};
  RunningStats s;
  double sum = 0.0;
  for (const double x : xs) {
    s.add(x);
    sum += x;
  }
  const double mean = sum / static_cast<double>(xs.size());
  double var = 0.0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  const double pop_var = var / static_cast<double>(xs.size());
  const double samp_var = var / static_cast<double>(xs.size() - 1);

  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), pop_var, 1e-12);
  EXPECT_NEAR(s.sample_variance(), samp_var, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(pop_var), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.25);
  EXPECT_NEAR(s.sum(), sum, 1e-12);
}

TEST(RunningStats, NumericallyStableForLargeOffsets) {
  // Naive sum-of-squares would lose all precision here.
  RunningStats s;
  const double base = 1e9;
  for (int i = 0; i < 1000; ++i) s.add(base + (i % 2 == 0 ? 1.0 : -1.0));
  EXPECT_NEAR(s.mean(), base, 1e-3);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(RunningStats, MergeEqualsBulk) {
  Xoshiro256 rng(17);
  RunningStats bulk;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(3.0, 2.0);
    bulk.add(x);
    (i % 3 == 0 ? a : b).add(x);
  }
  RunningStats merged = a;
  merged.merge(b);
  EXPECT_EQ(merged.count(), bulk.count());
  EXPECT_NEAR(merged.mean(), bulk.mean(), 1e-9);
  EXPECT_NEAR(merged.variance(), bulk.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(merged.min(), bulk.min());
  EXPECT_DOUBLE_EQ(merged.max(), bulk.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  RunningStats merged = a;
  merged.merge(empty);
  EXPECT_EQ(merged.count(), 2u);
  RunningStats from_empty = empty;
  from_empty.merge(a);
  EXPECT_EQ(from_empty.count(), 2u);
  EXPECT_NEAR(from_empty.mean(), 1.5, 1e-12);
}

TEST(Cdf, EmptyIsSafe) {
  const Cdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_EQ(cdf.quantile(0.5), 0.0);
  EXPECT_EQ(cdf.fraction_at_or_below(1.0), 0.0);
  EXPECT_TRUE(cdf.curve(5).empty());
}

TEST(Cdf, QuantilesOfKnownData) {
  const Cdf cdf({4.0, 1.0, 3.0, 2.0, 5.0});
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 5.0);
  EXPECT_DOUBLE_EQ(cdf.median(), 3.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.125), 1.5);  // interpolated
  EXPECT_DOUBLE_EQ(cdf.mean(), 3.0);
}

TEST(Cdf, FractionAtOrBelow) {
  const Cdf cdf({1.0, 2.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(2.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(10.0), 1.0);
}

TEST(Cdf, CurveIsMonotone) {
  Xoshiro256 rng(21);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.uniform(0.0, 100.0));
  const Cdf cdf(std::move(xs));
  const auto curve = cdf.curve(17);
  ASSERT_EQ(curve.size(), 17u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].value, curve[i - 1].value);
    EXPECT_GT(curve[i].fraction, curve[i - 1].fraction);
  }
  EXPECT_DOUBLE_EQ(curve.front().fraction, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().fraction, 1.0);
}

TEST(Cdf, QuantileClampsInput) {
  const Cdf cdf({1.0, 2.0});
  EXPECT_DOUBLE_EQ(cdf.quantile(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.5), 2.0);
}

TEST(RelativeError, Basics) {
  EXPECT_DOUBLE_EQ(*relative_error(110.0, 100.0), 0.10);
  EXPECT_DOUBLE_EQ(*relative_error(90.0, 100.0), 0.10);
  EXPECT_DOUBLE_EQ(*relative_error(100.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(*relative_error(-90.0, -100.0), 0.10);
  EXPECT_FALSE(relative_error(5.0, 0.0).has_value());
}

TEST(FormatCdfTable, ContainsLabelAndRows) {
  const Cdf cdf({1.0, 2.0, 3.0});
  const std::string table = format_cdf_table(cdf, "demo", 5);
  EXPECT_NE(table.find("demo"), std::string::npos);
  EXPECT_NE(table.find("n=3"), std::string::npos);
  // 5 curve rows + 2 header lines.
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 7);
}

// Property: quantile() and fraction_at_or_below() are approximate inverses.
class CdfInverseSweep : public ::testing::TestWithParam<double> {};

TEST_P(CdfInverseSweep, QuantileFractionRoundTrip) {
  Xoshiro256 rng(33);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(rng.exponential(1.0));
  const Cdf cdf(std::move(xs));
  const double q = GetParam();
  const double v = cdf.quantile(q);
  EXPECT_NEAR(cdf.fraction_at_or_below(v), q, 0.01);
}

INSTANTIATE_TEST_SUITE_P(Quantiles, CdfInverseSweep,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9, 0.99));

}  // namespace
}  // namespace rlir::common
