// The fleet-of-agents acceptance bar: the SAME FatTreeSim workload,
// collected two ways —
//
//   baseline:     vantages -> FleetCollector -> one in-process collector
//   partitioned:  vantages -> PartitionedClient (flow-hash spray) -> 4
//                 CollectorAgents -> QueryCoordinator merges
//
// — must agree bin for bin: every flow's sketch, every link distribution,
// the fleet sketch, and the ranked top-k. Partitioning changes WHERE
// records are aggregated, never WHAT the fleet answers. Proven over
// loopback pipes (single-threaded, deterministic) and real Unix sockets
// (agents on their own threads, kernel in the path).
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <system_error>
#include <thread>
#include <utility>
#include <vector>

#include "fleet_workload.h"
#include "transport/agent.h"
#include "transport/coordinator.h"
#include "transport/partitioned_client.h"
#include "transport/socket.h"

namespace rlir {
namespace {

constexpr std::size_t kAgents = 4;

transport::CollectorAgentConfig agent_config() {
  transport::CollectorAgentConfig cfg;
  cfg.collector.shard_count = testutil::kWorkloadShards;
  return cfg;
}

/// Merged state of every agent — what "the fleet's collector" means.
collect::ShardedCollector merged_snapshot(
    std::vector<std::unique_ptr<transport::CollectorAgent>>& agents) {
  auto merged = agents.front()->collector().snapshot();
  for (std::size_t i = 1; i < agents.size(); ++i) {
    const auto part = agents[i]->collector().snapshot();
    merged.merge(part);
  }
  return merged;
}

/// Coordinator answers vs the baseline collector: fleet sketch, EVERY
/// flow's bins, link distributions, ranked top-k, and per-flow quantiles.
/// `flow_probe_limit` bounds the per-flow sweep (every query is a full
/// fan-out; socket runs probe a subset, loopback runs probe everything).
void expect_coordinator_matches(transport::QueryCoordinator& coord,
                                collect::ShardedCollector& want,
                                std::size_t flow_probe_limit) {
  const auto fleet = coord.fleet();
  EXPECT_EQ(fleet.bins(), want.fleet().bins());
  EXPECT_EQ(fleet.count(), want.fleet().count());

  const auto got_top = coord.top_k_ranked(10, 0.99);
  const auto want_top = want.top_k_ranked(10, 0.99);
  ASSERT_EQ(got_top.size(), want_top.size());
  for (std::size_t i = 0; i < want_top.size(); ++i) {
    EXPECT_EQ(got_top[i].second.key, want_top[i].second.key) << "rank " << i;
    EXPECT_EQ(got_top[i].first, want_top[i].first) << "rank " << i;
    EXPECT_EQ(got_top[i].second.packets, want_top[i].second.packets) << "rank " << i;
  }

  const auto links = coord.link_distributions();
  ASSERT_EQ(links.size(), want.links().size());
  for (const auto& [link, dist] : links) {
    const auto want_dist = want.link_distribution(link);
    ASSERT_TRUE(want_dist.has_value()) << "link " << link;
    EXPECT_EQ(dist.bins(), want_dist->bins()) << "link " << link;
    EXPECT_EQ(dist.count(), want_dist->count()) << "link " << link;
  }

  const auto all_flows = want.top_k_flows(want.flow_count(), 0.99);
  ASSERT_EQ(all_flows.size(), want.flow_count());
  std::size_t probed = 0;
  for (const auto& flow : all_flows) {
    if (probed++ == flow_probe_limit) break;
    const auto sketch = coord.flow_sketch(flow.key);
    ASSERT_TRUE(sketch.has_value()) << flow.key.to_string();
    const auto* want_sketch = want.flow(flow.key);
    EXPECT_EQ(sketch->bins(), want_sketch->bins()) << flow.key.to_string();
    EXPECT_EQ(sketch->count(), want_sketch->count()) << flow.key.to_string();
    EXPECT_EQ(coord.flow_quantile(flow.key, 0.99), want.flow_quantile(flow.key, 0.99))
        << flow.key.to_string();
  }

  const auto stats = coord.fleet_stats();
  EXPECT_EQ(stats.records_ingested, want.records_ingested());
  EXPECT_EQ(stats.estimates_ingested, want.estimates_ingested());
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_EQ(coord.stats().agent_failures, 0u);
}

TEST(FleetCoordinatorE2E, PartitionedLoopbackFleetMatchesSingleCollector) {
  auto want = testutil::fleet_baseline_state();

  std::vector<std::unique_ptr<transport::CollectorAgent>> agents;
  for (std::size_t i = 0; i < kAgents; ++i) {
    agents.push_back(std::make_unique<transport::CollectorAgent>(agent_config()));
  }
  const auto poll_all = [&agents] {
    for (auto& agent : agents) agent->poll();
  };
  const auto factory = [&agents](std::size_t i) {
    return [&agents, i]() {
      auto [client_end, agent_end] = transport::make_loopback();
      agents[i]->add_connection(std::move(agent_end));
      return std::move(client_end);
    };
  };

  transport::PartitionedClient pc;
  for (std::size_t i = 0; i < kAgents; ++i) pc.add_endpoint(factory(i));

  testutil::run_fleet_workload({pc.make_sink()}, [&] {
    pc.pump();
    poll_all();
  });
  for (int i = 0; i < 200 && !pc.drain(8); ++i) poll_all();
  poll_all();

  // Lossless run: everything submitted was routed, delivered, ingested.
  EXPECT_EQ(pc.records_shed(), 0u);
  EXPECT_EQ(pc.records_inflight(), 0u);
  EXPECT_EQ(pc.stats().records_submitted, want.records_ingested());
  std::uint64_t ingested = 0;
  for (std::size_t i = 0; i < kAgents; ++i) {
    EXPECT_EQ(agents[i]->stats().records_ingested, pc.records_routed(i)) << "agent " << i;
    EXPECT_GT(pc.records_routed(i), 0u) << "agent " << i << " got no share";
    ingested += agents[i]->stats().records_ingested;
  }
  EXPECT_EQ(ingested, want.records_ingested());

  // The four agents' merged state IS the single collector's state.
  auto got = merged_snapshot(agents);
  testutil::expect_identical_collectors(got, want);

  // And the coordinator derives the same answers over the wire.
  transport::QueryCoordinator coord;
  for (std::size_t i = 0; i < kAgents; ++i) coord.add_agent(factory(i));
  coord.set_drive(poll_all);
  ASSERT_EQ(coord.connected_count(), kAgents);
  expect_coordinator_matches(coord, want, want.flow_count());  // every flow
}

TEST(FleetCoordinatorE2E, PartitionedUnixSocketFleetMatchesSingleCollector) {
  std::vector<std::unique_ptr<transport::SocketListener>> listeners;
  std::vector<transport::SocketAddress> addresses;
  for (std::size_t i = 0; i < kAgents; ++i) {
    const std::string path = ::testing::TempDir() + "rlir_fc_" +
                             std::to_string(::getpid()) + "_" + std::to_string(i) + ".sock";
    try {
      listeners.push_back(std::make_unique<transport::SocketListener>(
          transport::SocketAddress::unix_path(path)));
    } catch (const std::system_error&) {
      GTEST_SKIP() << "sandbox forbids unix sockets";
    }
    addresses.push_back(listeners.back()->address());
  }

  auto want = testutil::fleet_baseline_state();

  // Deployment shape: each agent owns its thread (as it would its process).
  // The vector is fully built BEFORE any thread starts: a push_back
  // reallocation under a running reactor thread's agents[i] is a race.
  std::vector<std::unique_ptr<transport::CollectorAgent>> agents;
  for (std::size_t i = 0; i < kAgents; ++i) {
    agents.push_back(std::make_unique<transport::CollectorAgent>(agent_config()));
    agents[i]->set_listener(std::move(listeners[i]));
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kAgents; ++i) {
    threads.emplace_back(
        [&agents, &stop, i] { agents[i]->run(stop, timebase::Duration::microseconds(100)); });
  }

  {
    transport::PartitionedClient pc;
    for (std::size_t i = 0; i < kAgents; ++i) {
      pc.add_endpoint([address = addresses[i]]() { return transport::connect_to(address); });
    }
    testutil::run_fleet_workload({pc.make_sink()}, [&pc] { pc.pump(); });
    ASSERT_TRUE(pc.drain(100000)) << "sockets never drained";

    // Per-endpoint conservation over the wire: each stats query rides the
    // SAME connection as that endpoint's record frames, so its reply
    // proves every frame before it was processed.
    for (std::size_t i = 0; i < kAgents; ++i) {
      transport::Query q;
      q.kind = transport::QueryKind::kStats;
      const auto reply = pc.client(i).query(q);
      ASSERT_TRUE(reply.has_value()) << "agent " << i << " stats query got no reply";
      EXPECT_EQ(reply->stats.records_ingested, pc.records_routed(i)) << "agent " << i;
      EXPECT_EQ(reply->stats.protocol_errors, 0u) << "agent " << i;
    }
    EXPECT_EQ(pc.records_shed(), 0u);
    EXPECT_EQ(pc.stats().records_submitted, want.records_ingested());
  }

  // Coordinator over fresh socket connections, agents still live on their
  // threads (no drive hook: rounds sleep, the reactor threads answer).
  {
    transport::QueryCoordinator coord;
    for (std::size_t i = 0; i < kAgents; ++i) {
      coord.add_agent([address = addresses[i]]() { return transport::connect_to(address); });
    }
    ASSERT_EQ(coord.connected_count(), kAgents);
    expect_coordinator_matches(coord, want, 10);  // loopback run swept all flows
  }

  stop.store(true);
  for (auto& thread : threads) thread.join();

  auto got = merged_snapshot(agents);
  testutil::expect_identical_collectors(got, want);
}

}  // namespace
}  // namespace rlir
