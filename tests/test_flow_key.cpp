// Unit tests: net/flow_key.h and net/packet.h — flow keys and packets.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "net/flow_key.h"
#include "net/packet.h"

namespace rlir::net {
namespace {

FiveTuple sample_key() {
  FiveTuple key;
  key.src = Ipv4Address(10, 0, 0, 1);
  key.dst = Ipv4Address(10, 3, 0, 2);
  key.src_port = 44'321;
  key.dst_port = 443;
  key.proto = static_cast<std::uint8_t>(IpProto::kTcp);
  return key;
}

TEST(FiveTuple, EqualityAndOrdering) {
  const FiveTuple a = sample_key();
  FiveTuple b = a;
  EXPECT_EQ(a, b);
  b.dst_port = 80;
  EXPECT_NE(a, b);
  EXPECT_TRUE(a < b || b < a);
}

TEST(FiveTuple, HashDistinguishesFields) {
  const FiveTuple base = sample_key();
  std::set<std::uint64_t> hashes{base.hash()};

  FiveTuple v = base;
  v.src = Ipv4Address(10, 0, 0, 2);
  hashes.insert(v.hash());
  v = base;
  v.dst = Ipv4Address(10, 3, 0, 3);
  hashes.insert(v.hash());
  v = base;
  v.src_port = 1;
  hashes.insert(v.hash());
  v = base;
  v.dst_port = 80;
  hashes.insert(v.hash());
  v = base;
  v.proto = static_cast<std::uint8_t>(IpProto::kUdp);
  hashes.insert(v.hash());

  EXPECT_EQ(hashes.size(), 6u);  // base + 5 single-field variants, all distinct
}

TEST(FiveTuple, StdHashIntegration) {
  std::unordered_set<FiveTuple> set;
  set.insert(sample_key());
  set.insert(sample_key());
  EXPECT_EQ(set.size(), 1u);
}

TEST(FiveTuple, ToStringFormat) {
  EXPECT_EQ(sample_key().to_string(), "10.0.0.1:44321>10.3.0.2:443/6");
}

TEST(Packet, TrueDelay) {
  Packet p;
  p.injected_at = timebase::TimePoint(1'000);
  p.ts = timebase::TimePoint(3'500);
  EXPECT_EQ(p.true_delay().ns(), 2'500);
}

TEST(Packet, MakeReferencePacket) {
  const auto ref = make_reference_packet(/*id=*/7, timebase::TimePoint(100),
                                         timebase::TimePoint(105), /*seq=*/42);
  EXPECT_TRUE(ref.is_reference());
  EXPECT_EQ(ref.kind, PacketKind::kReference);
  EXPECT_EQ(ref.sender, 7);
  EXPECT_EQ(ref.seq, 42u);
  EXPECT_EQ(ref.ts, timebase::TimePoint(100));
  EXPECT_EQ(ref.injected_at, timebase::TimePoint(100));
  EXPECT_EQ(ref.ref_stamp, timebase::TimePoint(105));  // skewed clock stamp
  EXPECT_EQ(ref.size_bytes, 64u);

  const auto big = make_reference_packet(1, timebase::TimePoint(0), timebase::TimePoint(0),
                                         0, /*size=*/128);
  EXPECT_EQ(big.size_bytes, 128u);
}

TEST(Packet, KindToString) {
  EXPECT_STREQ(to_string(PacketKind::kRegular), "regular");
  EXPECT_STREQ(to_string(PacketKind::kCross), "cross");
  EXPECT_STREQ(to_string(PacketKind::kReference), "reference");
}

TEST(Packet, ToStringMentionsKindAndSender) {
  const auto ref =
      make_reference_packet(3, timebase::TimePoint(0), timebase::TimePoint(0), 9);
  const std::string s = ref.to_string();
  EXPECT_NE(s.find("reference"), std::string::npos);
  EXPECT_NE(s.find("sender=3"), std::string::npos);

  Packet regular;
  regular.kind = PacketKind::kRegular;
  EXPECT_NE(regular.to_string().find("regular"), std::string::npos);
}

}  // namespace
}  // namespace rlir::net
