// The fault half of the fleet tier's acceptance bar: kill 1 of 4 agents
// MID-STREAM during the standard workload and prove the system degrades
// the way the design promises —
//
//   (a) the partitioned client declares the endpoint down and reroutes
//       exactly its hash slots to the survivors (sticky homes elsewhere);
//   (b) record conservation holds end to end:
//         submitted == sum(ingested) + shed + inflight
//       (exact, because the kill lands at a pipe-quiescent point — nothing
//       was in flight to be silently destroyed);
//   (c) post-rebalance fleet queries merge the reachable agents without
//       double counting: flows that never lived on the dead agent answer
//       bin-for-bin identically to the no-fault baseline, and the fleet
//       totals account for exactly the records the dead agent took with it.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "fault_stream.h"
#include "fleet_workload.h"
#include "transport/agent.h"
#include "transport/coordinator.h"
#include "transport/partitioned_client.h"

namespace rlir {
namespace {

using transport::testutil::FaultPlan;
using transport::testutil::FaultyByteStream;

constexpr std::size_t kAgents = 4;
constexpr std::size_t kVictim = 1;

struct KillableFleet {
  KillableFleet() : alive(kAgents, true), conns(kAgents, nullptr) {
    transport::CollectorAgentConfig cfg;
    cfg.collector.shard_count = testutil::kWorkloadShards;
    for (std::size_t i = 0; i < kAgents; ++i) {
      agents.push_back(std::make_unique<transport::CollectorAgent>(cfg));
    }
  }

  /// Every connection is wrapped in a no-fault FaultyByteStream: the kill
  /// switch, flipped at a moment the TEST chooses.
  transport::CollectorClient::StreamFactory factory(std::size_t i) {
    return [this, i]() -> std::unique_ptr<transport::ByteStream> {
      if (!alive[i]) return nullptr;
      auto [client_end, agent_end] = transport::make_loopback();
      agents[i]->add_connection(std::move(agent_end));
      auto wrapped = std::make_unique<FaultyByteStream>(std::move(client_end), FaultPlan{});
      conns[i] = wrapped.get();
      return wrapped;
    };
  }

  void kill(std::size_t i) {
    alive[i] = false;
    conns[i]->cut_now();
  }

  void poll_all() {
    for (auto& agent : agents) agent->poll();
  }

  std::vector<std::unique_ptr<transport::CollectorAgent>> agents;
  std::vector<bool> alive;
  std::vector<FaultyByteStream*> conns;
};

TEST(FleetCoordinatorFault, AgentKillMidStreamRebalancesAndConserves) {
  auto want = testutil::fleet_baseline_state();

  KillableFleet fleet;
  transport::PartitionedClientConfig cfg;
  cfg.down_after_pumps = 2;
  transport::PartitionedClient pc(cfg);
  for (std::size_t i = 0; i < kAgents; ++i) pc.add_endpoint(fleet.factory(i));
  // The slot->home map BEFORE any fault: which flows never depend on the
  // victim. Captured via a probe pump (seals the endpoint set).
  pc.pump();

  int steps = 0;
  bool killed = false;
  std::uint64_t routed_to_victim_at_kill = 0;
  testutil::run_fleet_workload({pc.make_sink()}, [&] {
    pc.pump();
    fleet.poll_all();
    ++steps;
    // Mid-stream (several epochs delivered, several to come), at a
    // quiescent point: drain every queue and pipe first, so the cut
    // destroys no in-flight bytes and conservation stays EXACT. (A cut
    // with bytes in the pipe loses them silently — at-most-once delivery —
    // which a test of exact accounting must not race with.)
    if (!killed && steps == 12) {
      for (int i = 0; i < 200 && !pc.drain(8); ++i) fleet.poll_all();
      fleet.poll_all();
      ASSERT_EQ(pc.records_inflight(), 0u) << "kill point not quiescent";
      routed_to_victim_at_kill = pc.records_routed(kVictim);
      ASSERT_GT(routed_to_victim_at_kill, 0u) << "victim saw no traffic before the kill";
      fleet.kill(kVictim);
      killed = true;
    }
  });
  ASSERT_TRUE(killed) << "workload too short to kill mid-stream";
  for (int i = 0; i < 200 && !pc.drain(8); ++i) fleet.poll_all();
  fleet.poll_all();

  // (a) Rebalance: the victim is down, exactly its home slots moved, and
  // they moved to survivors.
  EXPECT_FALSE(pc.endpoint_healthy(kVictim));
  EXPECT_EQ(pc.healthy_count(), kAgents - 1);
  EXPECT_EQ(pc.stats().rebalances, 1u);
  EXPECT_EQ(pc.stats().recoveries, 0u);
  EXPECT_EQ(pc.stats().slots_reassigned, pc.slot_count() / kAgents);
  for (std::size_t s = 0; s < pc.slot_count(); ++s) {
    if (s % kAgents == kVictim) {
      EXPECT_NE(pc.endpoint_for_slot(s), kVictim) << "slot " << s;
    } else {
      EXPECT_EQ(pc.endpoint_for_slot(s), s % kAgents) << "slot " << s;
    }
  }
  // The victim ingested everything routed to it before the kill, nothing
  // after (anything routed in the down-detection window is still queued in
  // its client = inflight, not lost silently).
  EXPECT_EQ(fleet.agents[kVictim]->stats().records_ingested, routed_to_victim_at_kill);

  // (b) Conservation, exact: every submitted record is ingested somewhere,
  // shed under the buffer cap, or queued toward the dead endpoint.
  std::uint64_t ingested = 0;
  for (auto& agent : fleet.agents) ingested += agent->stats().records_ingested;
  EXPECT_EQ(ingested + pc.records_shed() + pc.records_inflight(),
            pc.stats().records_submitted);
  EXPECT_EQ(pc.stats().records_submitted, want.records_ingested());

  // (c) Post-rebalance queries over the REACHABLE fleet (the victim's
  // factory refuses: a dead process), merged without double counting.
  transport::QueryCoordinatorConfig qcfg;
  qcfg.reply_rounds = 64;
  transport::QueryCoordinator coord(qcfg);
  for (std::size_t i = 0; i < kAgents; ++i) coord.add_agent(fleet.factory(i));
  coord.set_drive([&fleet] { fleet.poll_all(); });

  // Fleet totals: exactly the survivors' estimates — each record counted
  // once, the victim's share absent, nothing double-merged.
  std::uint64_t survivor_estimates = 0;
  for (std::size_t i = 0; i < kAgents; ++i) {
    if (i != kVictim) survivor_estimates += fleet.agents[i]->stats().estimates_ingested;
  }
  const auto fleet_sketch = coord.fleet();
  EXPECT_EQ(fleet_sketch.count(), survivor_estimates);
  EXPECT_LT(fleet_sketch.count(), want.fleet().count());  // partial truth
  EXPECT_EQ(coord.fleet_stats().records_ingested,
            ingested - fleet.agents[kVictim]->stats().records_ingested);
  EXPECT_GE(coord.stats().agent_failures, 1u);  // the victim missed each fan-out

  // Flows that never depended on the victim (home slot elsewhere — sticky
  // homes guarantee they never moved) answer bin-for-bin as if no fault
  // had happened. Flows homed on the victim answer partial truth: never
  // MORE than the baseline (no duplication), possibly less.
  const auto all_flows = want.top_k_flows(want.flow_count(), 0.99);
  std::size_t unaffected = 0;
  std::size_t victim_homed = 0;
  for (const auto& flow : all_flows) {
    const auto slot = pc.slot_for(flow.key);
    const auto* want_sketch = want.flow(flow.key);
    const auto got = coord.flow_sketch(flow.key);
    if (slot % kAgents != kVictim) {
      ++unaffected;
      ASSERT_TRUE(got.has_value()) << flow.key.to_string();
      EXPECT_EQ(got->bins(), want_sketch->bins()) << flow.key.to_string();
      EXPECT_EQ(got->count(), want_sketch->count()) << flow.key.to_string();
      EXPECT_EQ(coord.flow_quantile(flow.key, 0.99), want.flow_quantile(flow.key, 0.99))
          << flow.key.to_string();
    } else {
      ++victim_homed;
      if (got.has_value()) {
        EXPECT_LE(got->count(), want_sketch->count())
            << flow.key.to_string() << " double counted";
      }
    }
  }
  EXPECT_GT(unaffected, 0u);
  EXPECT_GT(victim_homed, 0u) << "workload never exercised the victim's slots";
}

}  // namespace
}  // namespace rlir
