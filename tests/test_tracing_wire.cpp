// The tracing additions to the query-plane codecs: the optional 17-byte
// trace-context block on kQuery payloads (absent = bit-identical legacy 34
// bytes), the 21-byte RLTC record-batch trailer, and the kTraceSpans reply
// — round-trips plus the reject-don't-guess validations (bad flags, zero
// ids, out-of-range span kinds, truncation, trailing bytes).
#include "transport/messages.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "obs/span.h"

namespace rlir::transport {
namespace {

constexpr std::size_t kLegacyQuerySize = 34;
constexpr std::size_t kTracedQuerySize = kLegacyQuerySize + 17;

Query sample_query() {
  Query query;
  query.kind = QueryKind::kTopK;
  query.k = 5;
  query.q = 0.99;
  query.key.src = net::Ipv4Address(10, 0, 0, 1);
  query.key.dst = net::Ipv4Address(10, 1, 0, 2);
  query.key.src_port = 4000;
  query.key.dst_port = 80;
  query.epoch_first = 3;
  query.epoch_last = 9;
  return query;
}

obs::Span sample_span(std::uint64_t trace_id, std::uint64_t span_id,
                      std::uint64_t parent_id, obs::SpanKind kind, std::string label) {
  obs::Span span;
  span.trace_id = trace_id;
  span.span_id = span_id;
  span.parent_id = parent_id;
  span.kind = kind;
  span.start_ns = 1'700'000'000'123'456'789;
  span.end_ns = 1'700'000'000'123'500'000;
  span.label = std::move(label);
  return span;
}

TEST(TracingWireTest, UntracedQueryStaysLegacy34Bytes) {
  const auto bytes = encode_query(sample_query());
  ASSERT_EQ(bytes.size(), kLegacyQuerySize);
  const auto decoded = decode_query(bytes.data(), bytes.size());
  EXPECT_EQ(decoded.kind, QueryKind::kTopK);
  EXPECT_EQ(decoded.k, 5u);
  EXPECT_FALSE(decoded.trace.valid());
  EXPECT_EQ(decoded.trace.span_id, 0u);
}

TEST(TracingWireTest, TracedQueryRoundTrips51Bytes) {
  Query query = sample_query();
  query.trace = obs::TraceContext{0x1122334455667788ULL, 0xa1b2c3d4e5f60718ULL};
  const auto bytes = encode_query(query);
  ASSERT_EQ(bytes.size(), kTracedQuerySize);
  const auto decoded = decode_query(bytes.data(), bytes.size());
  EXPECT_EQ(decoded.trace.trace_id, query.trace.trace_id);
  EXPECT_EQ(decoded.trace.span_id, query.trace.span_id);
  EXPECT_EQ(decoded.kind, query.kind);
  EXPECT_EQ(decoded.epoch_last, query.epoch_last);
}

TEST(TracingWireTest, QueryRejectsMalformedTraceBlock) {
  Query query = sample_query();
  query.trace = obs::TraceContext{42, 43};
  auto bytes = encode_query(query);

  // Sizes strictly between the two valid payloads.
  EXPECT_THROW((void)decode_query(bytes.data(), kLegacyQuerySize + 1), std::runtime_error);
  EXPECT_THROW((void)decode_query(bytes.data(), kTracedQuerySize - 1), std::runtime_error);

  // Unknown flags byte.
  auto bad_flags = bytes;
  bad_flags[kLegacyQuerySize] = 2;
  EXPECT_THROW((void)decode_query(bad_flags.data(), bad_flags.size()), std::runtime_error);

  // A present block with trace id 0 ("traced by nothing") is a contradiction.
  auto zero_trace = bytes;
  for (std::size_t i = 0; i < 8; ++i) zero_trace[kLegacyQuerySize + 1 + i] = 0;
  EXPECT_THROW((void)decode_query(zero_trace.data(), zero_trace.size()), std::runtime_error);
}

TEST(TracingWireTest, TraceTrailerRoundTrips) {
  std::vector<std::uint8_t> buf;
  append_trace_trailer(buf, obs::TraceContext{0xdeadbeefULL, 0xfeedfaceULL});
  ASSERT_EQ(buf.size(), kTraceTrailerSize);
  EXPECT_TRUE(is_trace_trailer(buf.data(), buf.size()));

  const auto ctx = decode_trace_trailer(buf.data(), buf.size());
  EXPECT_EQ(ctx.trace_id, 0xdeadbeefULL);
  EXPECT_EQ(ctx.span_id, 0xfeedfaceULL);
}

TEST(TracingWireTest, TraceTrailerRejectsMalformed) {
  std::vector<std::uint8_t> buf;
  append_trace_trailer(buf, obs::TraceContext{1, 2});

  // The magic peek must not confuse a batch header for a trailer.
  const std::uint8_t rles[] = {'R', 'L', 'E', 'S', 0, 0, 0, 0};
  EXPECT_FALSE(is_trace_trailer(rles, sizeof rles));
  EXPECT_FALSE(is_trace_trailer(buf.data(), 3));  // too short to hold magic

  auto bad_version = buf;
  bad_version[4] = 9;
  EXPECT_THROW((void)decode_trace_trailer(bad_version.data(), bad_version.size()),
               std::runtime_error);

  auto zero_trace = buf;
  for (std::size_t i = 0; i < 8; ++i) zero_trace[5 + i] = 0;
  EXPECT_THROW((void)decode_trace_trailer(zero_trace.data(), zero_trace.size()),
               std::runtime_error);

  EXPECT_THROW((void)decode_trace_trailer(buf.data(), buf.size() - 1), std::runtime_error);
  buf.push_back(0);  // trailer must occupy EXACTLY the remaining bytes
  EXPECT_THROW((void)decode_trace_trailer(buf.data(), buf.size()), std::runtime_error);
}

QueryReply sample_trace_reply() {
  QueryReply reply;
  reply.kind = QueryKind::kTraceSpans;
  reply.spans.push_back(
      sample_span(10, 11, 0, obs::SpanKind::kCoordMerge, "fleet"));
  reply.spans.push_back(
      sample_span(10, 12, 11, obs::SpanKind::kAgentAnswer, ""));
  reply.spans_dropped = 7;
  reply.spans_total = 9;
  return reply;
}

TEST(TracingWireTest, TraceSpansReplyRoundTrips) {
  const auto reply = sample_trace_reply();
  const auto bytes = encode_reply(reply);
  const auto decoded = decode_reply(bytes.data(), bytes.size());

  EXPECT_EQ(decoded.kind, QueryKind::kTraceSpans);
  ASSERT_EQ(decoded.spans.size(), 2u);
  EXPECT_EQ(decoded.spans[0].trace_id, 10u);
  EXPECT_EQ(decoded.spans[0].span_id, 11u);
  EXPECT_EQ(decoded.spans[0].parent_id, 0u);
  EXPECT_EQ(decoded.spans[0].kind, obs::SpanKind::kCoordMerge);
  EXPECT_EQ(decoded.spans[0].start_ns, reply.spans[0].start_ns);
  EXPECT_EQ(decoded.spans[0].end_ns, reply.spans[0].end_ns);
  EXPECT_EQ(decoded.spans[0].label, "fleet");
  EXPECT_EQ(decoded.spans[1].parent_id, 11u);
  EXPECT_EQ(decoded.spans[1].label, "");
  EXPECT_EQ(decoded.spans_dropped, 7u);
  EXPECT_EQ(decoded.spans_total, 9u);
}

// Reply layout: u8 kind | u32 count | entries | u64 dropped | u64 total.
// First entry at 5; within an entry: trace(8) span(8) parent(8) kind(1) ...
constexpr std::size_t kFirstEntry = 1 + 4;
constexpr std::size_t kEntrySpanId = kFirstEntry + 8;
constexpr std::size_t kEntryKind = kFirstEntry + 24;

TEST(TracingWireTest, TraceSpansReplyRejectsBadSpanKind) {
  auto bytes = encode_reply(sample_trace_reply());
  bytes[kEntryKind] = 0;
  EXPECT_THROW((void)decode_reply(bytes.data(), bytes.size()), std::runtime_error);
  bytes[kEntryKind] = static_cast<std::uint8_t>(obs::kSpanKindCount + 1);
  EXPECT_THROW((void)decode_reply(bytes.data(), bytes.size()), std::runtime_error);
}

TEST(TracingWireTest, TraceSpansReplyRejectsZeroSpanId) {
  auto bytes = encode_reply(sample_trace_reply());
  for (std::size_t i = 0; i < 8; ++i) bytes[kEntrySpanId + i] = 0;
  EXPECT_THROW((void)decode_reply(bytes.data(), bytes.size()), std::runtime_error);
}

TEST(TracingWireTest, TraceSpansReplyRejectsTruncationAndTrailingBytes) {
  auto bytes = encode_reply(sample_trace_reply());
  EXPECT_THROW((void)decode_reply(bytes.data(), bytes.size() - 1), std::runtime_error);
  EXPECT_THROW((void)decode_reply(bytes.data(), kFirstEntry + 10), std::runtime_error);
  bytes.push_back(0);
  EXPECT_THROW((void)decode_reply(bytes.data(), bytes.size()), std::runtime_error);
}

TEST(TracingWireTest, QueryKindNamesAreStable) {
  EXPECT_STREQ(query_kind_name(QueryKind::kFleet), "fleet");
  EXPECT_STREQ(query_kind_name(QueryKind::kTraceSpans), "trace_spans");
  EXPECT_STREQ(query_kind_name(QueryKind::kWindowFlowQuantile), "window_flow_quantile");
}

}  // namespace
}  // namespace rlir::transport
