// ByteStream backends: the loopback pipe's deterministic semantics
// (ordering, capacity backpressure, half-close draining) and the POSIX
// socket backend's equivalents over real Unix-domain and TCP sockets.
// Socket cases skip (not fail) where the sandbox forbids sockets.
#include "transport/byte_stream.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <system_error>
#include <vector>

#include "transport/socket.h"

namespace rlir::transport {
namespace {

std::vector<std::uint8_t> bytes_of(std::size_t n, std::uint8_t start = 1) {
  std::vector<std::uint8_t> b(n);
  std::iota(b.begin(), b.end(), start);
  return b;
}

/// Reads until `want` bytes arrive or reads stop making progress.
std::vector<std::uint8_t> read_all(ByteStream& stream, std::size_t want) {
  std::vector<std::uint8_t> got;
  std::uint8_t chunk[256];
  int stalls = 0;
  while (got.size() < want && stalls < 1000) {
    const std::size_t n = stream.read_some(chunk, sizeof(chunk));
    if (n == 0) {
      ++stalls;
      continue;
    }
    stalls = 0;
    got.insert(got.end(), chunk, chunk + n);
  }
  return got;
}

TEST(TransportStream, LoopbackDeliversInOrderBothWays) {
  auto [a, b] = make_loopback();
  const auto to_b = bytes_of(300, 1);
  const auto to_a = bytes_of(200, 101);
  EXPECT_EQ(a->write_some(to_b.data(), to_b.size()), to_b.size());
  EXPECT_EQ(b->write_some(to_a.data(), to_a.size()), to_a.size());
  EXPECT_EQ(read_all(*b, to_b.size()), to_b);
  EXPECT_EQ(read_all(*a, to_a.size()), to_a);
  EXPECT_FALSE(a->closed());
  EXPECT_FALSE(b->closed());
}

TEST(TransportStream, LoopbackCapacityGivesPartialWrites) {
  auto [a, b] = make_loopback(/*capacity=*/10);
  const auto data = bytes_of(25);
  // First write takes only what fits — socket-buffer backpressure in
  // miniature, deterministic.
  EXPECT_EQ(a->write_some(data.data(), data.size()), 10u);
  EXPECT_EQ(a->write_some(data.data() + 10, 15), 0u);  // full
  std::uint8_t sink[4];
  EXPECT_EQ(b->read_some(sink, sizeof(sink)), 4u);
  EXPECT_EQ(a->write_some(data.data() + 10, 15), 4u);  // freed exactly 4
}

TEST(TransportStream, LoopbackHalfCloseDrainsThenEofs) {
  auto [a, b] = make_loopback();
  const auto data = bytes_of(32);
  ASSERT_EQ(a->write_some(data.data(), data.size()), data.size());
  a->close();
  // Reader drains what was written before the close...
  EXPECT_FALSE(b->closed());
  EXPECT_EQ(read_all(*b, data.size()), data);
  // ...then observes EOF.
  EXPECT_TRUE(b->closed());
  // And writes toward the closed peer move nothing.
  EXPECT_EQ(b->write_some(data.data(), data.size()), 0u);
}

TEST(TransportStream, SocketAddressParses) {
  const auto unix_addr = SocketAddress::parse("unix:/tmp/x.sock");
  EXPECT_EQ(unix_addr.kind, SocketAddress::Kind::kUnix);
  EXPECT_EQ(unix_addr.path, "/tmp/x.sock");
  EXPECT_EQ(unix_addr.to_string(), "unix:/tmp/x.sock");

  const auto tcp_addr = SocketAddress::parse("tcp:127.0.0.1:9100");
  EXPECT_EQ(tcp_addr.kind, SocketAddress::Kind::kTcp);
  EXPECT_EQ(tcp_addr.host, "127.0.0.1");
  EXPECT_EQ(tcp_addr.port, 9100);
  EXPECT_EQ(tcp_addr.to_string(), "tcp:127.0.0.1:9100");

  EXPECT_THROW(SocketAddress::parse("bogus"), std::invalid_argument);
  EXPECT_THROW(SocketAddress::parse("unix:"), std::invalid_argument);
  EXPECT_THROW(SocketAddress::parse("tcp:127.0.0.1"), std::invalid_argument);
  EXPECT_THROW(SocketAddress::parse("tcp:127.0.0.1:99999"), std::invalid_argument);
}

/// Bind a listener or skip the test in sandboxes that forbid sockets.
std::unique_ptr<SocketListener> listen_or_skip(const SocketAddress& address) {
  try {
    return std::make_unique<SocketListener>(address);
  } catch (const std::system_error&) {
    return nullptr;
  }
}

std::unique_ptr<ByteStream> accept_one(SocketListener& listener) {
  for (int i = 0; i < 1000; ++i) {
    if (auto conn = listener.accept()) return conn;
  }
  return nullptr;
}

void exercise_socket_pair(SocketListener& listener) {
  auto client = connect_to(listener.address());
  ASSERT_NE(client, nullptr);
  auto server = accept_one(listener);
  ASSERT_NE(server, nullptr);

  const auto request = bytes_of(4096, 3);
  std::size_t sent = 0;
  std::vector<std::uint8_t> got;
  // Interleave writes and reads: the pipe has finite kernel buffers.
  std::uint8_t chunk[512];
  while (sent < request.size() || got.size() < request.size()) {
    if (sent < request.size()) {
      sent += client->write_some(request.data() + sent, request.size() - sent);
    }
    const std::size_t n = server->read_some(chunk, sizeof(chunk));
    got.insert(got.end(), chunk, chunk + n);
  }
  EXPECT_EQ(got, request);

  // Reply direction, then orderly shutdown.
  const auto reply = bytes_of(128, 9);
  ASSERT_EQ(server->write_some(reply.data(), reply.size()), reply.size());
  EXPECT_EQ(read_all(*client, reply.size()), reply);
  client->close();
  // Server observes EOF once the kernel delivers it.
  for (int i = 0; i < 1000 && !server->closed(); ++i) {
    server->read_some(chunk, sizeof(chunk));
  }
  EXPECT_TRUE(server->closed());
}

TEST(TransportStream, UnixSocketRoundTrip) {
  const std::string path =
      testing::TempDir() + "rlir_stream_" + std::to_string(::getpid()) + ".sock";
  auto listener = listen_or_skip(SocketAddress::unix_path(path));
  if (listener == nullptr) GTEST_SKIP() << "sandbox forbids unix sockets";
  exercise_socket_pair(*listener);
}

TEST(TransportStream, TcpSocketRoundTripOnEphemeralPort) {
  auto listener = listen_or_skip(SocketAddress::tcp("127.0.0.1", 0));
  if (listener == nullptr) GTEST_SKIP() << "sandbox forbids tcp sockets";
  // Port 0 asked the kernel; the listener must report what it got.
  EXPECT_NE(listener->address().port, 0);
  exercise_socket_pair(*listener);
}

TEST(TransportStream, ConnectToNobodyReturnsNull) {
  // A refused dial is the retryable case: nullptr, not an exception.
  EXPECT_EQ(connect_to(SocketAddress::unix_path("/tmp/rlir_no_such_socket.sock")), nullptr);
}

}  // namespace
}  // namespace rlir::transport
