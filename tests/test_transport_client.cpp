// CollectorClient failure machinery: batch coalescing, bounded send
// buffering with oldest-batch shedding (counted), reconnect-with-backoff
// after dial failures and mid-stream disconnects, and whole-frame resend so
// a connection death never corrupts the framing the agent sees.
#include "transport/client.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "transport/agent.h"
#include "transport/byte_stream.h"
#include "transport/frame.h"

namespace rlir::transport {
namespace {

std::vector<collect::EstimateRecord> make_batch(std::size_t n, std::uint32_t epoch,
                                                std::uint64_t seed = 11) {
  common::Xoshiro256 rng(seed);
  std::vector<collect::EstimateRecord> records;
  for (std::size_t i = 0; i < n; ++i) {
    collect::EstimateRecord r;
    r.key.src = net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(i));
    r.key.dst = net::Ipv4Address(10, 1, 0, static_cast<std::uint8_t>(i));
    r.key.src_port = static_cast<std::uint16_t>(1000 + i);
    r.key.dst_port = 80;
    r.epoch = epoch;
    r.link = 0;
    for (int j = 0; j < 50; ++j) r.sketch.add(rng.lognormal(9.0, 1.0));
    records.push_back(std::move(r));
  }
  return records;
}

/// A factory wired to a fresh loopback pipe per dial, handing the agent end
/// to `agent` — plus dial-failure injection for the backoff tests.
struct LoopbackDialer {
  CollectorAgent* agent;
  std::size_t capacity = 0;
  /// Dials to fail before connections start succeeding.
  int failures_remaining = 0;
  int dials = 0;
  /// The client side's current pipe peer (to kill the connection).
  ByteStream* last_agent_end = nullptr;

  CollectorClient::StreamFactory factory() {
    return [this]() -> std::unique_ptr<ByteStream> {
      ++dials;
      if (failures_remaining > 0) {
        --failures_remaining;
        return nullptr;
      }
      auto [client_end, agent_end] = make_loopback(capacity);
      last_agent_end = agent_end.get();
      agent->add_connection(std::move(agent_end));
      return std::move(client_end);
    };
  }
};

TEST(TransportClient, CoalescesSmallBatchesIntoOneFrame) {
  CollectorAgent agent;
  LoopbackDialer dialer{&agent};
  CollectorClientConfig cfg;
  cfg.coalesce_bytes = 1u << 20;  // far above what we submit: nothing seals early
  CollectorClient client(cfg, dialer.factory());

  for (std::uint32_t e = 0; e < 5; ++e) client.submit(e, make_batch(3, e));
  EXPECT_EQ(client.coalescing_records(), 15u);
  EXPECT_EQ(client.stats().frames_queued, 0u);  // still coalescing, no frame yet

  client.flush();
  EXPECT_EQ(client.coalescing_records(), 0u);
  EXPECT_EQ(client.stats().frames_queued, 1u);  // five batches, ONE frame
  ASSERT_TRUE(client.drain());
  agent.poll();

  const auto stats = agent.stats();
  EXPECT_EQ(stats.frames_received, 1u);
  EXPECT_EQ(stats.batches_received, 5u);  // prefix decoder split them back apart
  EXPECT_EQ(stats.records_ingested, 15u);
}

TEST(TransportClient, SealsWhenCoalesceBytesReached) {
  CollectorAgent agent;
  LoopbackDialer dialer{&agent};
  CollectorClientConfig cfg;
  cfg.coalesce_bytes = 1;  // every submit seals immediately
  CollectorClient client(cfg, dialer.factory());
  client.submit(0, make_batch(2, 0));
  client.submit(1, make_batch(2, 1));
  EXPECT_EQ(client.stats().frames_queued, 2u);
}

TEST(TransportClient, ShedsOldestBatchWhenBufferFull) {
  CollectorAgent agent;
  LoopbackDialer dialer{&agent};
  CollectorClientConfig cfg;
  cfg.coalesce_bytes = 1;
  // Room for roughly two encoded 20-record frames, not five.
  const auto probe = collect::encode_records(make_batch(20, 0));
  cfg.max_buffered_bytes = (probe.size() + kFrameHeaderSize) * 2 + 16;
  CollectorClient client(cfg, dialer.factory());

  // No pump between submits: everything queues, the cap must shed.
  for (std::uint32_t e = 0; e < 5; ++e) client.submit(e, make_batch(20, e));
  EXPECT_LE(client.buffered_bytes(), cfg.max_buffered_bytes);
  EXPECT_EQ(client.stats().batch_frames_shed, 3u);
  EXPECT_EQ(client.stats().records_shed, 60u);

  ASSERT_TRUE(client.drain());
  agent.poll();
  agent.collector().quiesce();
  // The SURVIVORS are the newest epochs — oldest-first shedding.
  EXPECT_EQ(agent.stats().records_ingested, 40u);
  const auto epochs = agent.collector().snapshot().epochs_seen();
  EXPECT_EQ(epochs, (std::vector<std::uint32_t>{3, 4}));
}

TEST(TransportClient, DialFailuresBackOffThenRecover) {
  CollectorAgent agent;
  LoopbackDialer dialer{&agent};
  dialer.failures_remaining = 3;
  CollectorClientConfig cfg;
  cfg.reconnect_backoff_initial = 2;
  cfg.reconnect_backoff_max = 64;
  CollectorClient client(cfg, dialer.factory());  // eager dial #1 fails
  EXPECT_FALSE(client.connected());
  EXPECT_EQ(client.stats().connect_failures, 1u);

  client.submit(0, make_batch(4, 0));
  client.flush();
  // Backoff doubles per failure (2, then 4, then 8 pumps of silence), so
  // the dial count grows far slower than the pump count.
  for (int i = 0; i < 32 && !client.connected(); ++i) client.pump();
  EXPECT_TRUE(client.connected());
  EXPECT_EQ(dialer.dials, 4);  // 3 failures + 1 success, not one per pump
  EXPECT_EQ(client.stats().connect_failures, 3u);
  // First successful dial is a connect, not a REconnect.
  EXPECT_EQ(client.stats().reconnects, 0u);

  ASSERT_TRUE(client.drain());
  agent.poll();
  agent.collector().quiesce();
  EXPECT_EQ(agent.stats().records_ingested, 4u);
}

TEST(TransportClient, MidStreamDisconnectResendsWholeFrameAfterReconnect) {
  CollectorAgent agent;
  // Tiny pipe capacity: a frame takes many pumps, so we can kill the
  // connection with the front frame half-written.
  LoopbackDialer dialer{&agent, /*capacity=*/64};
  CollectorClientConfig cfg;
  cfg.coalesce_bytes = 1;
  CollectorClient client(cfg, dialer.factory());
  ASSERT_TRUE(client.connected());

  client.submit(0, make_batch(8, 0));
  client.pump();  // writes the first 64 bytes of a ~1KiB frame
  ASSERT_GT(client.buffered_bytes(), 0u) << "frame unexpectedly fit the pipe";

  // The agent dies mid-frame: its end closes, taking the partial frame.
  dialer.last_agent_end->close();
  agent.poll();  // reaps the dead connection
  EXPECT_EQ(agent.connections_closed(), 1u);
  EXPECT_EQ(agent.stats().records_ingested, 0u);

  // The client notices, re-dials, and resends the frame FROM ITS FIRST
  // BYTE on the new connection — the new decoder never sees a torn frame.
  for (int i = 0; i < 200 && !client.drain(8); ++i) agent.poll();
  agent.poll();
  agent.collector().quiesce();
  EXPECT_EQ(client.stats().reconnects, 1u);
  EXPECT_EQ(agent.stats().records_ingested, 8u);
  EXPECT_EQ(agent.stats().protocol_errors, 0u);
}

TEST(TransportClient, QueryReplyRoundTripOverLoopback) {
  CollectorAgent agent;
  LoopbackDialer dialer{&agent};
  CollectorClient client(CollectorClientConfig{}, dialer.factory());

  client.submit(0, make_batch(6, 0));
  Query q;
  q.kind = QueryKind::kStats;
  client.send_query(q);
  // A second query while one is outstanding is a programming error.
  EXPECT_THROW(client.send_query(q), std::logic_error);

  std::optional<QueryReply> reply;
  for (int i = 0; i < 100 && !reply.has_value(); ++i) {
    client.pump();
    agent.poll();
    reply = client.poll_reply();
  }
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->kind, QueryKind::kStats);
  // send_query sealed the coalescing buffer first, so the reply reflects
  // the records submitted before it.
  EXPECT_EQ(reply->stats.records_ingested, 6u);
  EXPECT_EQ(reply->stats.queries_answered, 1u);
}

TEST(TransportClient, AgentDropsGarbageSpeakingPeer) {
  CollectorAgent agent;
  auto [client_end, agent_end] = make_loopback();
  agent.add_connection(std::move(agent_end));

  const std::uint8_t garbage[] = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x01, 0x02, 0x03,
                                  0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b};
  ASSERT_EQ(client_end->write_some(garbage, sizeof(garbage)), sizeof(garbage));
  agent.poll();
  EXPECT_EQ(agent.protocol_errors(), 1u);
  EXPECT_EQ(agent.connection_count(), 0u);  // dropped, not tolerated
}

TEST(TransportClient, AgentDropsPeerThatNeverReadsReplies) {
  // The reply outbox is bounded like every other allocation on the agent's
  // untrusted path: a peer that queries forever without reading is dropped.
  CollectorAgentConfig cfg;
  cfg.max_outbox_bytes = 256;
  CollectorAgent agent(cfg);
  auto [client_end, agent_end] = make_loopback(/*capacity=*/64);  // tiny: replies back up
  agent.add_connection(std::move(agent_end));

  Query q;
  q.kind = QueryKind::kStats;
  const auto frame = encode_frame(FrameType::kQuery, encode_query(q));
  int sent = 0;
  for (; sent < 100 && agent.connection_count() > 0; ++sent) {
    std::size_t off = 0;
    while (off < frame.size()) {
      const auto n = client_end->write_some(frame.data() + off, frame.size() - off);
      if (n == 0) break;
      off += n;
    }
    agent.poll();  // never reading client_end: replies pile up agent-side
  }
  EXPECT_EQ(agent.connection_count(), 0u);
  EXPECT_GE(agent.protocol_errors(), 1u);
  EXPECT_LT(sent, 100) << "outbox cap never tripped";
}

TEST(TransportClient, AgentDropsPeerOnCorruptPayloadInsideValidFrame) {
  // Framing intact (CRC matches the corrupted bytes), but the payload is
  // not a record batch: the per-format validation must still catch it.
  CollectorAgent agent;
  auto [client_end, agent_end] = make_loopback();
  agent.add_connection(std::move(agent_end));

  std::vector<std::uint8_t> not_records(64, 0x5a);
  const auto frame = encode_frame(FrameType::kRecordBatch, not_records);
  ASSERT_EQ(client_end->write_some(frame.data(), frame.size()), frame.size());
  agent.poll();
  EXPECT_EQ(agent.protocol_errors(), 1u);
  EXPECT_EQ(agent.connection_count(), 0u);
}

}  // namespace
}  // namespace rlir::transport
