// SpanRecorder: the per-process span ring under the conditions that matter —
// concurrent recorders hammering one ring (bounded memory, exact total/drop
// accounting, no lost ids; the TSan target), the SpanTimer RAII contract
// (null recorder = free no-op), the stage-histogram/slow-log bridges into
// the metrics registry and event trace, and the trace filter.
#include "obs/span.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/event_trace.h"
#include "obs/metrics.h"

namespace rlir::obs {
namespace {

Span make_span(SpanKind kind, std::uint64_t trace_id, std::int64_t start_ns,
               std::int64_t end_ns, std::string label = {}) {
  Span span;
  span.trace_id = trace_id;
  span.kind = kind;
  span.start_ns = start_ns;
  span.end_ns = end_ns;
  span.label = std::move(label);
  return span;
}

TEST(SpanRecorderTest, RingBoundedUnderConcurrentHammer) {
  constexpr std::size_t kCapacity = 256;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 2000;
  SpanRecorder recorder(kCapacity);

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        recorder.record(make_span(SpanKind::kAgentIngest, t + 1,
                                  static_cast<std::int64_t>(i),
                                  static_cast<std::int64_t>(i + 10)));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const auto snap = recorder.snapshot();
  EXPECT_EQ(snap.spans.size(), kCapacity);
  EXPECT_EQ(snap.total, kThreads * kPerThread);
  EXPECT_EQ(snap.dropped, kThreads * kPerThread - kCapacity);
  for (const auto& span : snap.spans) EXPECT_NE(span.span_id, 0u);
}

TEST(SpanRecorderTest, AssignedIdsAreUniqueAndNonzero) {
  SpanRecorder recorder(2048);
  std::set<std::uint64_t> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.insert(recorder.record(make_span(SpanKind::kClientQuery, 1, 0, 1)));
  }
  EXPECT_EQ(ids.size(), 1000u);
  EXPECT_EQ(ids.count(0), 0u);
  EXPECT_NE(recorder.new_trace_id(), 0u);
  EXPECT_NE(recorder.next_span_id(), 0u);
}

TEST(SpanRecorderTest, CallerSuppliedIdIsKept) {
  SpanRecorder recorder;
  Span span = make_span(SpanKind::kCoordLeg, 7, 0, 5);
  span.span_id = 42;
  EXPECT_EQ(recorder.record(span), 42u);
  EXPECT_EQ(recorder.snapshot().spans.back().span_id, 42u);
}

TEST(SpanRecorderTest, LabelTruncatedToMax) {
  SpanRecorder recorder;
  recorder.record(make_span(SpanKind::kEpochSeal, 0, 0, 1,
                            std::string(SpanRecorder::kMaxLabel + 50, 'x')));
  EXPECT_EQ(recorder.snapshot().spans.back().label.size(), SpanRecorder::kMaxLabel);
}

TEST(SpanRecorderTest, ForTraceFiltersAndPreservesOrder) {
  SpanRecorder recorder;
  recorder.record(make_span(SpanKind::kClientFlush, 5, 10, 20));
  recorder.record(make_span(SpanKind::kAgentDecode, 9, 30, 40));
  recorder.record(make_span(SpanKind::kAgentIngest, 5, 50, 60));

  const auto spans = recorder.for_trace(5);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].kind, SpanKind::kClientFlush);
  EXPECT_EQ(spans[1].kind, SpanKind::kAgentIngest);
  EXPECT_TRUE(recorder.for_trace(1234).empty());
}

TEST(SpanRecorderTest, BindMetricsFeedsStageHistograms) {
  SpanRecorder recorder;
  MetricsRegistry registry;
  recorder.bind_metrics(&registry, {});
  // Later binds are no-ops: one owner's identity, no duplicate registration.
  MetricsRegistry other;
  recorder.bind_metrics(&other, {{"id", "x"}});

  recorder.record(make_span(SpanKind::kAgentDecode, 0, 0, 500));
  recorder.record(make_span(SpanKind::kAgentDecode, 0, 0, 700));
  recorder.record(make_span(SpanKind::kCoordMerge, 1, 0, 900));

  const auto snap = registry.snapshot();
  std::uint64_t decode_count = 0;
  std::uint64_t merge_count = 0;
  for (const auto& sample : snap.samples) {
    if (sample.name != "rlir_stage_ns") continue;
    ASSERT_EQ(sample.labels.size(), 1u);
    if (sample.labels[0].second == "decode") decode_count = sample.histogram.count();
    if (sample.labels[0].second == "merge") merge_count = sample.histogram.count();
  }
  EXPECT_EQ(decode_count, 2u);
  EXPECT_EQ(merge_count, 1u);
  EXPECT_EQ(other.snapshot().samples.size(), 0u);
}

TEST(SpanRecorderTest, SlowLogPromotesOverThresholdSpans) {
  SpanRecorder recorder;
  MetricsRegistry registry;
  EventTrace trace;
  recorder.bind_metrics(&registry, {});
  recorder.set_slow_log(1000, &trace);

  recorder.record(make_span(SpanKind::kAgentAnswer, 3, 0, 999, "fleet"));   // fast
  recorder.record(make_span(SpanKind::kAgentAnswer, 3, 0, 2500, "fleet"));  // slow

  EXPECT_EQ(trace.count(EventKind::kSlowSpan), 1u);
  const auto events = trace.snapshot();
  ASSERT_FALSE(events.events.empty());
  EXPECT_EQ(events.events.back().kind, EventKind::kSlowSpan);
  EXPECT_EQ(events.events.back().value, 2500u);
  EXPECT_EQ(events.events.back().detail, "answer fleet");
  EXPECT_EQ(registry.counter("rlir_slow_queries_total", {})->value(), 1u);
}

TEST(SpanTimerTest, NullRecorderIsANoOp) {
  SpanTimer timer(nullptr, SpanKind::kClientQuery);
  EXPECT_FALSE(timer.active());
  EXPECT_FALSE(timer.context().valid());
  timer.set_label("ignored");
  timer.finish();  // must not crash
}

TEST(SpanTimerTest, RecordsOnceWithParentContext) {
  SpanRecorder recorder;
  const TraceContext parent{77, 88};
  {
    SpanTimer timer(&recorder, SpanKind::kHistoryWindow, parent, "fleet");
    EXPECT_TRUE(timer.active());
    EXPECT_EQ(timer.context().trace_id, 77u);
    EXPECT_NE(timer.context().span_id, 0u);
    timer.finish();
    timer.finish();  // idempotent; the destructor is a third no-op
  }
  const auto snap = recorder.snapshot();
  ASSERT_EQ(snap.spans.size(), 1u);
  const auto& span = snap.spans[0];
  EXPECT_EQ(span.trace_id, 77u);
  EXPECT_EQ(span.parent_id, 88u);
  EXPECT_EQ(span.kind, SpanKind::kHistoryWindow);
  EXPECT_EQ(span.label, "fleet");
  EXPECT_GE(span.end_ns, span.start_ns);
}

TEST(SpanKindTest, NamesAndStagesCoverEveryKind) {
  for (std::size_t i = 1; i <= kSpanKindCount; ++i) {
    const auto kind = static_cast<SpanKind>(i);
    EXPECT_STRNE(span_kind_name(kind), "?");
    EXPECT_STRNE(span_kind_stage(kind), "?");
  }
}

}  // namespace
}  // namespace rlir::obs
