// Unit tests: sim/cross_traffic.h — injection models and calibration.
#include <gtest/gtest.h>

#include "sim/cross_traffic.h"

namespace rlir::sim {
namespace {

using timebase::Duration;
using timebase::TimePoint;

net::Packet cross_packet(std::int64_t ts_ns, std::uint32_t bytes = 1000) {
  net::Packet p;
  p.ts = TimePoint(ts_ns);
  p.size_bytes = bytes;
  p.kind = net::PacketKind::kCross;
  return p;
}

TEST(CrossTrafficInjector, RejectsBadConfig) {
  CrossTrafficConfig cfg;
  cfg.selection_probability = 1.5;
  EXPECT_THROW(CrossTrafficInjector{cfg}, std::invalid_argument);
  cfg.selection_probability = -0.1;
  EXPECT_THROW(CrossTrafficInjector{cfg}, std::invalid_argument);
  cfg = CrossTrafficConfig{};
  cfg.model = CrossModel::kBursty;
  cfg.burst_on = Duration::zero();
  EXPECT_THROW(CrossTrafficInjector{cfg}, std::invalid_argument);
}

TEST(CrossTrafficInjector, UniformAdmitsAtConfiguredRate) {
  CrossTrafficConfig cfg;
  cfg.selection_probability = 0.3;
  cfg.seed = 1;
  CrossTrafficInjector injector(cfg);
  int admitted = 0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) {
    if (injector.admit(cross_packet(i))) ++admitted;
  }
  EXPECT_NEAR(static_cast<double>(admitted) / kN, 0.3, 0.01);
  EXPECT_EQ(injector.offered(), static_cast<std::uint64_t>(kN));
  EXPECT_EQ(injector.admitted(), static_cast<std::uint64_t>(admitted));
}

TEST(CrossTrafficInjector, ProbabilityExtremes) {
  CrossTrafficConfig cfg;
  cfg.selection_probability = 0.0;
  CrossTrafficInjector none(cfg);
  cfg.selection_probability = 1.0;
  CrossTrafficInjector all(cfg);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(none.admit(cross_packet(i)));
    EXPECT_TRUE(all.admit(cross_packet(i)));
  }
}

TEST(CrossTrafficInjector, BurstyAdmitsOnlyDuringOnWindows) {
  CrossTrafficConfig cfg;
  cfg.model = CrossModel::kBursty;
  cfg.selection_probability = 1.0;
  cfg.burst_on = Duration::microseconds(10);
  cfg.burst_off = Duration::microseconds(30);
  CrossTrafficInjector injector(cfg);

  // Inside the first ON window.
  EXPECT_TRUE(injector.admit(cross_packet(0)));
  EXPECT_TRUE(injector.admit(cross_packet(9'999)));
  // Inside the OFF window.
  EXPECT_FALSE(injector.admit(cross_packet(10'000)));
  EXPECT_FALSE(injector.admit(cross_packet(39'999)));
  // Next period's ON window.
  EXPECT_TRUE(injector.admit(cross_packet(40'000)));
}

TEST(CrossTrafficInjector, DutyCycle) {
  CrossTrafficConfig cfg;
  EXPECT_DOUBLE_EQ(CrossTrafficInjector(cfg).duty_cycle(), 1.0);
  cfg.model = CrossModel::kBursty;
  cfg.burst_on = Duration::milliseconds(10);
  cfg.burst_off = Duration::milliseconds(30);
  EXPECT_DOUBLE_EQ(CrossTrafficInjector(cfg).duty_cycle(), 0.25);
}

TEST(CrossTrafficInjector, AdmittedBytesAccumulate) {
  CrossTrafficConfig cfg;
  cfg.selection_probability = 1.0;
  CrossTrafficInjector injector(cfg);
  (void)injector.admit(cross_packet(0, 100));
  (void)injector.admit(cross_packet(1, 200));
  EXPECT_EQ(injector.admitted_bytes(), 300u);
}

TEST(CrossTrafficInjector, DeterministicPerSeed) {
  CrossTrafficConfig cfg;
  cfg.selection_probability = 0.5;
  cfg.seed = 77;
  CrossTrafficInjector a(cfg);
  CrossTrafficInjector b(cfg);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.admit(cross_packet(i)), b.admit(cross_packet(i)));
  }
}

TEST(SelectionForUtilization, SolvesTheLinearModel) {
  // capacity: 10G * 1s = 10e9 bits. regular = 2.2e9 bits (0.275e9 bytes).
  // target 0.67 => cross must add 4.5e9 bits. cross offered 9e9 bits => p=0.5.
  const double p = selection_for_utilization(0.67, 10e9, timebase::Duration::seconds(1),
                                             275'000'000, 1'125'000'000);
  EXPECT_NEAR(p, 0.5, 1e-9);
}

TEST(SelectionForUtilization, ClampsToUnitInterval) {
  // Regular alone already exceeds the target.
  EXPECT_DOUBLE_EQ(selection_for_utilization(0.1, 10e9, timebase::Duration::seconds(1),
                                             2'000'000'000, 1'000'000),
                   0.0);
  // Cross cannot reach the target even at p=1.
  EXPECT_DOUBLE_EQ(
      selection_for_utilization(0.99, 10e9, timebase::Duration::seconds(1), 0, 1'000),
      1.0);
  // No cross traffic at all.
  EXPECT_DOUBLE_EQ(
      selection_for_utilization(0.5, 10e9, timebase::Duration::seconds(1), 0, 0), 0.0);
}

// Property: admitted fraction tracks p across the sweep (uniform model).
class SelectionSweep : public ::testing::TestWithParam<double> {};

TEST_P(SelectionSweep, AdmitRateMatches) {
  CrossTrafficConfig cfg;
  cfg.selection_probability = GetParam();
  cfg.seed = 5;
  CrossTrafficInjector injector(cfg);
  int admitted = 0;
  constexpr int kN = 50'000;
  for (int i = 0; i < kN; ++i) {
    if (injector.admit(cross_packet(i))) ++admitted;
  }
  EXPECT_NEAR(static_cast<double>(admitted) / kN, GetParam(), 0.012);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, SelectionSweep,
                         ::testing::Values(0.05, 0.15, 0.34, 0.5, 0.67, 0.93));

}  // namespace
}  // namespace rlir::sim
