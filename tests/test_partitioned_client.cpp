// PartitionedClient: deterministic flow-hash routing (every flow's records
// on exactly ONE agent), endpoint health tracking, rebalance on agent loss
// with sticky home slots, fail-back on recovery, and record conservation
// through all of it — the invariants the fleet query tier's exactness
// rests on.
#include "transport/partitioned_client.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "fault_stream.h"
#include "transport/agent.h"
#include "transport/byte_stream.h"

namespace rlir::transport {
namespace {

using testutil::FaultPlan;
using testutil::FaultyByteStream;

std::vector<collect::EstimateRecord> make_batch(std::size_t n, std::uint32_t epoch,
                                                std::uint64_t seed = 17) {
  common::Xoshiro256 rng(seed);
  std::vector<collect::EstimateRecord> records;
  for (std::size_t i = 0; i < n; ++i) {
    collect::EstimateRecord r;
    r.key.src = net::Ipv4Address(10, 0, static_cast<std::uint8_t>(i >> 8),
                                 static_cast<std::uint8_t>(i));
    r.key.dst = net::Ipv4Address(10, 1, 0, 1);
    r.key.src_port = static_cast<std::uint16_t>(1000 + i);
    r.key.dst_port = 80;
    r.epoch = epoch;
    r.link = static_cast<collect::LinkId>(i % 3);
    for (int j = 0; j < 20; ++j) r.sketch.add(rng.lognormal(9.0, 1.0));
    records.push_back(std::move(r));
  }
  return records;
}

/// N loopback agents, each endpoint's connection wrapped in a (no-fault)
/// FaultyByteStream so the test can kill it at will; `alive[i] = false`
/// makes endpoint i's re-dials fail.
struct AgentFleet {
  explicit AgentFleet(std::size_t n)
      : agents(n), alive(n, true), conns(n, nullptr) {
    for (std::size_t i = 0; i < n; ++i) agents[i] = std::make_unique<CollectorAgent>();
  }

  CollectorClient::StreamFactory factory(std::size_t i) {
    return [this, i]() -> std::unique_ptr<ByteStream> {
      if (!alive[i]) return nullptr;
      auto [client_end, agent_end] = make_loopback();
      agents[i]->add_connection(std::move(agent_end));
      auto wrapped =
          std::make_unique<FaultyByteStream>(std::move(client_end), FaultPlan{});
      conns[i] = wrapped.get();
      return wrapped;
    };
  }

  void kill(std::size_t i) {
    alive[i] = false;
    ASSERT_NE(conns[i], nullptr);
    conns[i]->cut_now();
  }

  void revive(std::size_t i) { alive[i] = true; }

  void poll_all() {
    for (auto& agent : agents) agent->poll();
  }

  std::uint64_t total_ingested() {
    std::uint64_t total = 0;
    for (auto& agent : agents) total += agent->stats().records_ingested;
    return total;
  }

  std::vector<std::unique_ptr<CollectorAgent>> agents;
  std::vector<bool> alive;
  std::vector<FaultyByteStream*> conns;
};

void add_all_endpoints(PartitionedClient& pc, AgentFleet& fleet) {
  for (std::size_t i = 0; i < fleet.agents.size(); ++i) {
    pc.add_endpoint(fleet.factory(i));
  }
}

/// drain() + agent polling until everything healthy has landed.
void settle(PartitionedClient& pc, AgentFleet& fleet) {
  for (int i = 0; i < 200; ++i) {
    pc.drain(8);
    fleet.poll_all();
    if (pc.records_inflight() == 0) break;
    bool all_healthy_empty = true;
    for (std::size_t e = 0; e < pc.endpoint_count(); ++e) {
      if (pc.endpoint_healthy(e) && pc.client(e).queued_records() > 0) {
        all_healthy_empty = false;
      }
    }
    if (all_healthy_empty) break;
  }
  fleet.poll_all();
  for (auto& agent : fleet.agents) agent->collector().quiesce();
}

TEST(PartitionedClient, ValidatesConfigAndSealsEndpoints) {
  {
    PartitionedClientConfig cfg;
    cfg.slot_count = 0;
    EXPECT_THROW(PartitionedClient pc(cfg), std::invalid_argument);
  }
  {
    PartitionedClientConfig cfg;
    cfg.down_after_pumps = 0;
    EXPECT_THROW(PartitionedClient pc(cfg), std::invalid_argument);
  }
  {
    // No endpoints: the first submit has nowhere to route.
    PartitionedClient pc;
    EXPECT_THROW(pc.submit(0, make_batch(1, 0)), std::logic_error);
  }
  {
    // Fewer slots than endpoints cannot cover every endpoint.
    AgentFleet fleet(4);
    PartitionedClientConfig cfg;
    cfg.slot_count = 2;
    PartitionedClient pc(cfg);
    add_all_endpoints(pc, fleet);
    EXPECT_THROW(pc.submit(0, make_batch(1, 0)), std::invalid_argument);
  }
  {
    // The endpoint set is fixed once routing started.
    AgentFleet fleet(2);
    PartitionedClient pc;
    add_all_endpoints(pc, fleet);
    pc.pump();
    EXPECT_THROW(pc.add_endpoint(fleet.factory(0)), std::logic_error);
  }
}

TEST(PartitionedClient, RoutesEveryFlowToExactlyOneAgent) {
  AgentFleet fleet(4);
  PartitionedClient pc;
  add_all_endpoints(pc, fleet);
  const auto batch = make_batch(200, 0);
  pc.submit(0, batch);
  settle(pc, fleet);

  // The home table is the plain modulo spray while everyone is healthy.
  for (std::size_t s = 0; s < pc.slot_count(); ++s) {
    EXPECT_EQ(pc.endpoint_for_slot(s), s % 4);
  }

  // Conservation across the spray: routed sums to submitted, ingested
  // matches routed per endpoint.
  EXPECT_EQ(pc.stats().records_submitted, batch.size());
  std::uint64_t routed = 0;
  for (std::size_t e = 0; e < 4; ++e) {
    routed += pc.records_routed(e);
    EXPECT_EQ(fleet.agents[e]->stats().records_ingested, pc.records_routed(e));
    EXPECT_GT(pc.records_routed(e), 0u) << "endpoint " << e << " got nothing";
  }
  EXPECT_EQ(routed, batch.size());
  EXPECT_EQ(fleet.total_ingested(), batch.size());

  // Disjointness: each flow's records live on the ONE agent the table says.
  std::vector<collect::ShardedCollector> states;
  for (auto& agent : fleet.agents) states.push_back(agent->collector().snapshot());
  for (const auto& r : batch) {
    const auto owner = pc.endpoint_for(r.key);
    for (std::size_t e = 0; e < 4; ++e) {
      const auto* sketch = states[e].flow(r.key);
      if (e == owner) {
        ASSERT_NE(sketch, nullptr) << r.key.to_string();
      } else {
        EXPECT_EQ(sketch, nullptr) << r.key.to_string() << " leaked to " << e;
      }
    }
  }
}

TEST(PartitionedClient, EndpointLossRebalancesOnlyItsSlots) {
  AgentFleet fleet(4);
  PartitionedClientConfig cfg;
  cfg.down_after_pumps = 4;
  PartitionedClient pc(cfg);
  add_all_endpoints(pc, fleet);
  pc.submit(0, make_batch(100, 0));
  settle(pc, fleet);
  const auto ingested_before = fleet.agents[1]->stats().records_ingested;

  fleet.kill(1);
  // Deterministic declaration: healthy until down_after_pumps disconnected
  // pumps, down right after.
  for (std::uint32_t i = 0; i + 1 < cfg.down_after_pumps; ++i) pc.pump();
  EXPECT_TRUE(pc.endpoint_healthy(1));
  pc.pump();
  EXPECT_FALSE(pc.endpoint_healthy(1));
  EXPECT_EQ(pc.healthy_count(), 3u);
  EXPECT_EQ(pc.stats().rebalances, 1u);
  // Exactly the dead endpoint's home slots moved, nobody else's.
  EXPECT_EQ(pc.stats().slots_reassigned, pc.slot_count() / 4);
  for (std::size_t s = 0; s < pc.slot_count(); ++s) {
    if (s % 4 == 1) {
      EXPECT_NE(pc.endpoint_for_slot(s), 1u) << "slot " << s << " still on the dead agent";
    } else {
      EXPECT_EQ(pc.endpoint_for_slot(s), s % 4) << "slot " << s << " moved needlessly";
    }
  }

  // Post-rebalance traffic lands entirely on the survivors; conservation
  // holds with nothing shed and nothing stranded.
  const auto batch = make_batch(100, 1, 29);
  pc.submit(1, batch);
  settle(pc, fleet);
  EXPECT_EQ(fleet.agents[1]->stats().records_ingested, ingested_before);
  EXPECT_EQ(pc.records_shed(), 0u);
  EXPECT_EQ(pc.records_inflight(), 0u);
  EXPECT_EQ(fleet.total_ingested(), pc.stats().records_submitted);
}

TEST(PartitionedClient, RecoveryFailsBackToHomeSlots) {
  AgentFleet fleet(4);
  PartitionedClientConfig cfg;
  cfg.down_after_pumps = 2;
  PartitionedClient pc(cfg);
  add_all_endpoints(pc, fleet);
  pc.pump();  // seal + connect

  fleet.kill(2);
  for (int i = 0; i < 8 && pc.endpoint_healthy(2); ++i) pc.pump();
  ASSERT_FALSE(pc.endpoint_healthy(2));
  const auto moved_down = pc.stats().slots_reassigned;

  fleet.revive(2);
  // The endpoint's client never stops re-dialing (with backoff); once it
  // reconnects the home slots move back.
  for (int i = 0; i < 128 && !pc.endpoint_healthy(2); ++i) pc.pump();
  ASSERT_TRUE(pc.endpoint_healthy(2));
  EXPECT_EQ(pc.healthy_count(), 4u);
  EXPECT_EQ(pc.stats().recoveries, 1u);
  EXPECT_EQ(pc.stats().slots_reassigned, moved_down * 2);  // same slots, moved back
  for (std::size_t s = 0; s < pc.slot_count(); ++s) {
    EXPECT_EQ(pc.endpoint_for_slot(s), s % 4);
  }
}

TEST(PartitionedClient, QueuedRecordsOnDownEndpointAreInflightThenDelivered) {
  AgentFleet fleet(2);
  PartitionedClientConfig cfg;
  cfg.down_after_pumps = 2;
  cfg.client.coalesce_bytes = 1;  // every submit seals: records sit in frames
  PartitionedClient pc(cfg);
  add_all_endpoints(pc, fleet);
  pc.pump();

  // Kill endpoint 1 and submit WITHOUT pumping first: its share queues in
  // the dead endpoint's client.
  fleet.kill(1);
  const auto batch = make_batch(120, 0);
  pc.submit(0, batch);
  const auto stranded = pc.client(1).queued_records();
  ASSERT_GT(stranded, 0u);

  for (int i = 0; i < 8 && pc.endpoint_healthy(1); ++i) pc.pump();
  ASSERT_FALSE(pc.endpoint_healthy(1));
  // drain() succeeds by delivering the healthy endpoint's share; the
  // stranded records are the inflight conservation term, not a failure.
  EXPECT_TRUE(pc.drain(64));
  fleet.poll_all();
  for (auto& agent : fleet.agents) agent->collector().quiesce();
  EXPECT_EQ(pc.records_inflight(), stranded);
  EXPECT_EQ(fleet.total_ingested() + pc.records_shed() + pc.records_inflight(),
            pc.stats().records_submitted);

  // "Delivered if it returns": revive the endpoint and the stranded frames
  // flow — conservation closes with inflight at zero.
  fleet.revive(1);
  for (int i = 0; i < 128 && !pc.endpoint_healthy(1); ++i) pc.pump();
  ASSERT_TRUE(pc.endpoint_healthy(1));
  settle(pc, fleet);
  EXPECT_EQ(pc.records_inflight(), 0u);
  EXPECT_EQ(fleet.total_ingested() + pc.records_shed(), pc.stats().records_submitted);
}

}  // namespace
}  // namespace rlir::transport
