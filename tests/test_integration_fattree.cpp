// Fat-tree RLIR integration: the paper's Figure-1 scenario. Traffic from
// several ToRs multiplexes across ECMP paths; RLIR instances at ToR uplinks
// and cores measure per-flow latency per segment; demultiplexers attribute
// packets to the right reference stream; a localizer pins an injected
// latency anomaly to the right segment.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "rli/flow_stats.h"
#include "rli/receiver.h"
#include "rli/sender.h"
#include "rlir/demux.h"
#include "rlir/localization.h"
#include "rlir/receiver.h"
#include "rlir/segment_truth.h"
#include "rlir/sender_agent.h"
#include "timebase/clock.h"
#include "topo/fattree_sim.h"
#include "trace/synthetic.h"

namespace rlir {
namespace {

using timebase::Duration;
using topo::FatTree;
using topo::NodeId;

// A k=4 fat-tree testbed reproducing Figure 1: sender S1 at T1 (pod 0),
// receiver R3 at T7 (pod 3, index 0); competing traffic from T2.
class FatTreeRlirTest : public ::testing::Test {
 protected:
  static constexpr int kK = 4;

  FatTreeRlirTest()
      : topo_(kK),
        src_tor_(topo_.tor(0, 0)),
        other_tor_(topo_.tor(0, 1)),
        dst_tor_(topo_.tor(3, 0)) {}

  // Host-to-host traffic from all hosts under `from` to hosts under `to`.
  std::vector<net::Packet> make_traffic(NodeId from, NodeId to, double offered_bps,
                                        std::uint64_t seed, Duration duration) {
    trace::SyntheticConfig cfg;
    cfg.duration = duration;
    cfg.offered_bps = offered_bps;
    cfg.seed = seed;
    cfg.src_pool = topo_.host_prefix(from);
    cfg.dst_pool = topo_.host_prefix(to);
    cfg.first_seq = seed * 100'000'000ULL;
    return trace::SyntheticTraceGenerator(cfg).generate_all();
  }

  FatTree topo_;
  NodeId src_tor_;
  NodeId other_tor_;
  NodeId dst_tor_;
  topo::Crc32EcmpHasher hasher_;
  timebase::PerfectClock clock_;
};

TEST_F(FatTreeRlirTest, EcmpRoutesAreValidPaths) {
  const auto traffic = make_traffic(src_tor_, dst_tor_, 0.4e9, 3, Duration::milliseconds(5));
  ASSERT_FALSE(traffic.empty());
  for (const auto& pkt : traffic) {
    const auto route = topo::ecmp_route(topo_, hasher_, pkt.key, src_tor_, dst_tor_);
    ASSERT_EQ(route.size(), 5u);
    for (std::size_t i = 0; i + 1 < route.size(); ++i) {
      EXPECT_TRUE(topo_.adjacent(route[i], route[i + 1]))
          << route[i].name(kK) << " -> " << route[i + 1].name(kK);
    }
  }
}

TEST_F(FatTreeRlirTest, PacketsTraverseAndDeliver) {
  topo::FatTreeSim sim(&topo_, topo::FatTreeSimConfig{}, &hasher_);
  const auto traffic = make_traffic(src_tor_, dst_tor_, 0.5e9, 11, Duration::milliseconds(10));
  for (const auto& pkt : traffic) sim.inject_from_host(pkt);
  sim.run();
  EXPECT_EQ(sim.stats().injected, traffic.size());
  EXPECT_EQ(sim.stats().delivered_regular + sim.stats().dropped, traffic.size());
  EXPECT_GT(sim.stats().delivered_regular, traffic.size() * 9 / 10);
}

// Upstream segment: receivers at the cores, demultiplexing by origin prefix.
TEST_F(FatTreeRlirTest, UpstreamSegmentEstimatesPerCore) {
  topo::FatTreeSim sim(&topo_, topo::FatTreeSimConfig{}, &hasher_);
  const Duration duration = Duration::milliseconds(40);

  // Senders at T1 (S1) and T2 (S2) target all cores.
  std::vector<NodeId> cores;
  for (int c = 0; c < topo_.core_count(); ++c) cores.push_back(topo_.core(c));

  rli::SenderConfig s1_cfg;
  s1_cfg.id = 1;
  s1_cfg.static_gap = 50;
  rlir::TorSenderAgent s1(s1_cfg, &clock_, cores);
  sim.add_agent(src_tor_, &s1);

  rli::SenderConfig s2_cfg = s1_cfg;
  s2_cfg.id = 2;
  rlir::TorSenderAgent s2(s2_cfg, &clock_, cores);
  sim.add_agent(other_tor_, &s2);

  // Receivers at every core demux by origin-ToR prefix.
  rlir::PrefixDemux demux;
  demux.add_origin(topo_.host_prefix(src_tor_), 1);
  demux.add_origin(topo_.host_prefix(other_tor_), 2);

  std::vector<std::unique_ptr<rlir::RlirReceiver>> receivers;
  std::vector<std::unique_ptr<rlir::SegmentTruth>> truths;
  for (const auto& core : cores) {
    receivers.push_back(
        std::make_unique<rlir::RlirReceiver>(rli::ReceiverConfig{}, &clock_, &demux));
    sim.add_arrival_tap(core, receivers.back().get());

    truths.push_back(std::make_unique<rlir::SegmentTruth>());
    sim.add_arrival_tap(core, &truths.back()->exit_tap());
  }
  // Shared entry taps at the ToRs feed every core's truth tracker.
  for (auto& t : truths) {
    sim.add_arrival_tap(src_tor_, &t->entry_tap());
    sim.add_arrival_tap(other_tor_, &t->entry_tap());
  }

  for (const auto& pkt : make_traffic(src_tor_, dst_tor_, 1.2e9, 21, duration)) {
    sim.inject_from_host(pkt);
  }
  for (const auto& pkt : make_traffic(other_tor_, dst_tor_, 1.2e9, 22, duration)) {
    sim.inject_from_host(pkt);
  }
  sim.run();

  // Every core should have received probes from both senders and produced
  // per-flow estimates that track segment ground truth.
  std::size_t total_flows = 0;
  double worst_median = 0.0;
  for (std::size_t c = 0; c < cores.size(); ++c) {
    EXPECT_GE(receivers[c]->stream_count(), 2u) << "core " << cores[c].name(kK);
    const auto report = rli::AccuracyReport::compare(truths[c]->per_flow(),
                                                     receivers[c]->merged_estimates());
    total_flows += report.flow_count();
    if (report.flow_count() > 20) {
      worst_median = std::max(worst_median, report.median_mean_error());
    }
  }
  EXPECT_GT(total_flows, 200u);
  // Uncongested fabric: absolute delays are a few microseconds, so the
  // probe-vs-data serialization difference dominates relative error — the
  // paper's "lower accuracy at lower link utilization causes no significant
  // absolute errors" regime. Bound it loosely.
  EXPECT_LT(worst_median, 0.60);
}

// Downstream segment: receiver at T7 must attribute each packet to the core
// it came through. Reverse-ECMP and marking demux must agree and be exact.
TEST_F(FatTreeRlirTest, DownstreamDemuxMatchesActualCore) {
  topo::FatTreeSimConfig sim_cfg;
  sim_cfg.core_marking = true;
  topo::FatTreeSim sim(&topo_, sim_cfg, &hasher_);

  // Record the marks stamped by cores as packets arrive at T7 (= actual
  // core), and compare against the reverse-ECMP computation.
  struct MarkCheckTap final : sim::PacketTap {
    const FatTree* topo;
    const topo::EcmpHasher* hasher;
    NodeId receiver_tor;
    std::uint64_t checked = 0;
    std::uint64_t mismatches = 0;

    void on_packet(const net::Packet& pkt, timebase::TimePoint) override {
      if (pkt.kind != net::PacketKind::kRegular || pkt.tos == 0) return;
      const auto origin = topo->tor_for_address(pkt.key.src);
      if (!origin || origin->pod == receiver_tor.pod) return;
      const auto core =
          topo::reverse_ecmp_core(*topo, *hasher, pkt.key, *origin, receiver_tor);
      ++checked;
      if (static_cast<int>(pkt.tos) != core.index + 1) ++mismatches;
    }
  } check;
  check.topo = &topo_;
  check.hasher = &hasher_;
  check.receiver_tor = dst_tor_;
  sim.add_arrival_tap(dst_tor_, &check);

  for (const auto& pkt :
       make_traffic(src_tor_, dst_tor_, 1.0e9, 31, Duration::milliseconds(20))) {
    sim.inject_from_host(pkt);
  }
  sim.run();

  EXPECT_GT(check.checked, 1'000u);
  EXPECT_EQ(check.mismatches, 0u) << "reverse-ECMP must recover the marked core exactly";
}

// Full downstream measurement: core senders re-anchor traffic to T7; the
// receiver demuxes via reverse ECMP and per-flow estimates track segment
// ground truth per core.
TEST_F(FatTreeRlirTest, DownstreamSegmentEstimates) {
  topo::FatTreeSim sim(&topo_, topo::FatTreeSimConfig{}, &hasher_);
  const Duration duration = Duration::milliseconds(40);

  // A sender agent at each core, targeting T7.
  std::vector<std::unique_ptr<rlir::CoreSenderAgent>> core_senders;
  rlir::ReverseEcmpDemux demux(&topo_, &hasher_, dst_tor_);
  for (int c = 0; c < topo_.core_count(); ++c) {
    rli::SenderConfig cfg;
    cfg.id = static_cast<net::SenderId>(10 + c);
    cfg.static_gap = 50;
    core_senders.push_back(
        std::make_unique<rlir::CoreSenderAgent>(cfg, &clock_, std::vector<NodeId>{dst_tor_}));
    sim.add_agent(topo_.core(c), core_senders.back().get());
    demux.set_sender_at_core(c, cfg.id);
  }

  rlir::RlirReceiver receiver(rli::ReceiverConfig{}, &clock_, &demux);
  sim.add_arrival_tap(dst_tor_, &receiver);

  // Ground truth per core segment: entry at the core, exit at T7.
  std::vector<std::unique_ptr<rlir::SegmentTruth>> truths;
  for (int c = 0; c < topo_.core_count(); ++c) {
    truths.push_back(std::make_unique<rlir::SegmentTruth>());
    sim.add_arrival_tap(topo_.core(c), &truths.back()->entry_tap());
    sim.add_arrival_tap(dst_tor_, &truths.back()->exit_tap());
  }

  for (const auto& pkt : make_traffic(src_tor_, dst_tor_, 1.5e9, 41, duration)) {
    sim.inject_from_host(pkt);
  }
  for (const auto& pkt : make_traffic(other_tor_, dst_tor_, 1.0e9, 42, duration)) {
    sim.inject_from_host(pkt);
  }
  sim.run();

  EXPECT_EQ(receiver.unclassified_packets(), 0u);
  rli::FlowStatsMap truth_all;
  for (auto& t : truths) {
    for (const auto& [key, stats] : t->per_flow()) truth_all[key].merge(stats);
  }
  const auto report = rli::AccuracyReport::compare(truth_all, receiver.merged_estimates());
  EXPECT_GT(report.flow_count(), 200u);
  // Low-load regime: see the comment in UpstreamSegmentEstimatesPerCore.
  EXPECT_LT(report.median_mean_error(), 0.60);
}

// Anomaly localization: inject extra forwarding delay at one core; the
// localizer must rank that core's segment first.
TEST_F(FatTreeRlirTest, LocalizesSlowCore) {
  topo::FatTreeSim sim(&topo_, topo::FatTreeSimConfig{}, &hasher_);
  const Duration duration = Duration::milliseconds(40);
  const int slow_core = 2;
  sim.add_extra_delay(topo_.core(slow_core), Duration::microseconds(50));

  rlir::ReverseEcmpDemux demux(&topo_, &hasher_, dst_tor_);
  std::vector<std::unique_ptr<rlir::CoreSenderAgent>> core_senders;
  for (int c = 0; c < topo_.core_count(); ++c) {
    rli::SenderConfig cfg;
    cfg.id = static_cast<net::SenderId>(10 + c);
    cfg.static_gap = 50;
    core_senders.push_back(
        std::make_unique<rlir::CoreSenderAgent>(cfg, &clock_, std::vector<NodeId>{dst_tor_}));
    sim.add_agent(topo_.core(c), core_senders.back().get());
    demux.set_sender_at_core(c, cfg.id);
  }
  rlir::RlirReceiver receiver(rli::ReceiverConfig{}, &clock_, &demux);
  sim.add_arrival_tap(dst_tor_, &receiver);

  for (const auto& pkt : make_traffic(src_tor_, dst_tor_, 1.5e9, 51, duration)) {
    sim.inject_from_host(pkt);
  }
  sim.run();

  rlir::AnomalyLocalizer localizer;
  for (int c = 0; c < topo_.core_count(); ++c) {
    const auto* stream = receiver.stream(static_cast<net::SenderId>(10 + c));
    if (stream == nullptr) {
      localizer.add_segment(topo_.core(c).name(kK) + "-" + dst_tor_.name(kK), {});
      continue;
    }
    localizer.add_segment(topo_.core(c).name(kK) + "-" + dst_tor_.name(kK),
                          stream->per_flow());
  }

  const auto findings = localizer.localize(3.0);
  ASSERT_FALSE(findings.empty());
  const std::string expected = topo_.core(slow_core).name(kK) + "-" + dst_tor_.name(kK);
  EXPECT_EQ(findings.front().segment, expected);
  EXPECT_TRUE(findings.front().anomalous);
  // Only the slow segment should be flagged.
  for (std::size_t i = 1; i < findings.size(); ++i) {
    EXPECT_FALSE(findings[i].anomalous) << findings[i].segment;
  }
}

}  // namespace
}  // namespace rlir
