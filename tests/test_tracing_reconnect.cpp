// Trace context under connection faults: when a connection dies mid-query
// or mid-batch, the span story must stay truthful — the lost query's span
// closes exactly once (labeled as lost), the resent batch produces exactly
// one agent-side decode/ingest pair per delivered frame (no orphans from
// the partial frame, no duplicates from the resend), and every agent span
// parents back to a real client flush span.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "fault_stream.h"
#include "obs/span.h"
#include "transport/agent.h"
#include "transport/byte_stream.h"
#include "transport/client.h"
#include "transport/messages.h"

namespace rlir::transport {
namespace {

std::vector<collect::EstimateRecord> make_batch(std::size_t n, std::uint32_t epoch) {
  std::vector<collect::EstimateRecord> records;
  for (std::size_t i = 0; i < n; ++i) {
    collect::EstimateRecord r;
    r.key.src = net::Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(i));
    r.key.dst = net::Ipv4Address(10, 1, 0, 1);
    r.key.src_port = static_cast<std::uint16_t>(5000 + i);
    r.key.dst_port = 80;
    r.epoch = epoch;
    for (int j = 0; j < 8; ++j) r.sketch.add(40e3 + 1e3 * static_cast<double>(j));
    records.push_back(std::move(r));
  }
  return records;
}

std::vector<obs::Span> spans_of_kind(const obs::SpanRecorder& recorder, obs::SpanKind kind) {
  std::vector<obs::Span> out;
  for (const auto& span : recorder.snapshot().spans) {
    if (span.kind == kind) out.push_back(span);
  }
  return out;
}

TEST(TracingReconnectTest, LostQuerySpanClosesOnceAsLost) {
  obs::SpanRecorder spans;
  CollectorAgent agent;
  testutil::FaultyByteStream* faulty = nullptr;
  int dials = 0;
  CollectorClientConfig cfg;
  cfg.instruments.spans = &spans;
  CollectorClient client(cfg, [&]() -> std::unique_ptr<ByteStream> {
    auto [client_end, agent_end] = make_loopback();
    agent.add_connection(std::move(agent_end));
    ++dials;
    if (dials == 1) {
      auto wrapped = std::make_unique<testutil::FaultyByteStream>(std::move(client_end),
                                                                  testutil::FaultPlan{});
      faulty = wrapped.get();
      return wrapped;
    }
    return std::move(client_end);
  });

  Query query;
  query.kind = QueryKind::kStats;
  client.send_query(query);
  ASSERT_NE(faulty, nullptr);
  faulty->cut_now();  // the query frame dies with the connection
  for (int i = 0; i < 20 && client.stats().queries_lost == 0; ++i) {
    client.pump();
    agent.poll();
  }
  EXPECT_EQ(client.stats().queries_lost, 1u);
  EXPECT_FALSE(client.query_outstanding());

  auto query_spans = spans_of_kind(spans, obs::SpanKind::kClientQuery);
  ASSERT_EQ(query_spans.size(), 1u);
  EXPECT_EQ(query_spans[0].label, "stats lost");
  EXPECT_GE(query_spans[0].end_ns, query_spans[0].start_ns);

  // The retry on the fresh connection succeeds and closes its OWN span —
  // the lost span is not reopened or re-recorded.
  client.send_query(query);
  std::optional<QueryReply> reply;
  for (int i = 0; i < 1000 && !reply.has_value(); ++i) {
    client.pump();
    agent.poll();
    reply = client.poll_reply();
  }
  ASSERT_TRUE(reply.has_value());

  query_spans = spans_of_kind(spans, obs::SpanKind::kClientQuery);
  ASSERT_EQ(query_spans.size(), 2u);
  EXPECT_EQ(query_spans[1].label, "stats");
  EXPECT_NE(query_spans[0].span_id, query_spans[1].span_id);
}

TEST(TracingReconnectTest, BatchSpansSurviveMidFrameCutWithoutOrphansOrDuplicates) {
  obs::SpanRecorder client_spans;
  obs::SpanRecorder agent_spans;
  CollectorAgentConfig acfg;
  acfg.instruments.spans = &agent_spans;
  CollectorAgent agent(acfg);

  int dials = 0;
  CollectorClientConfig cfg;
  cfg.instruments.spans = &client_spans;
  cfg.coalesce_bytes = 2u << 10;  // several sealed frames across the run
  CollectorClient client(cfg, [&]() -> std::unique_ptr<ByteStream> {
    auto [client_end, agent_end] = make_loopback();
    agent.add_connection(std::move(agent_end));
    ++dials;
    if (dials == 1) {
      // Die mid-frame: the partial frame dies with the connection and is
      // resent in full on the next one.
      testutil::FaultPlan plan;
      plan.cut_after_write_bytes = 3000;
      return std::make_unique<testutil::FaultyByteStream>(std::move(client_end), plan);
    }
    return std::move(client_end);
  });

  for (std::uint32_t epoch = 0; epoch < 6; ++epoch) {
    client.submit(epoch, make_batch(40, epoch));
    client.pump();
    agent.poll();
  }
  for (int i = 0; i < 1000 && !client.drain(8); ++i) agent.poll();
  agent.poll();

  ASSERT_EQ(client.stats().records_shed, 0u);
  EXPECT_EQ(agent.protocol_errors(), 0u);
  EXPECT_GE(client.stats().reconnects, 1u);
  // Conservation first: every record made it despite the cut.
  EXPECT_EQ(agent.stats().records_ingested, client.stats().records_submitted);

  const auto flushes = spans_of_kind(client_spans, obs::SpanKind::kClientFlush);
  const auto decodes = spans_of_kind(agent_spans, obs::SpanKind::kAgentDecode);
  const auto ingests = spans_of_kind(agent_spans, obs::SpanKind::kAgentIngest);
  ASSERT_GE(flushes.size(), 2u);  // the cut landed between sealed frames

  std::set<std::uint64_t> flush_traces;
  std::set<std::uint64_t> flush_ids;
  for (const auto& span : flushes) {
    EXPECT_NE(span.trace_id, 0u);
    EXPECT_TRUE(flush_traces.insert(span.trace_id).second) << "duplicate flush trace";
    flush_ids.insert(span.span_id);
  }

  // Exactly one decode+ingest pair per delivered frame: no span for the
  // partial frame (orphan), none doubled by the resend (duplicate).
  EXPECT_EQ(decodes.size(), flushes.size());
  EXPECT_EQ(ingests.size(), flushes.size());
  std::set<std::uint64_t> decode_traces;
  for (const auto& span : decodes) {
    EXPECT_TRUE(flush_traces.count(span.trace_id) > 0) << "orphan decode span";
    EXPECT_TRUE(decode_traces.insert(span.trace_id).second) << "duplicate decode span";
    EXPECT_TRUE(flush_ids.count(span.parent_id) > 0) << "decode not parented to a flush";
  }
  for (const auto& span : ingests) {
    EXPECT_TRUE(flush_traces.count(span.trace_id) > 0) << "orphan ingest span";
    EXPECT_TRUE(flush_ids.count(span.parent_id) > 0) << "ingest not parented to a flush";
  }
}

}  // namespace
}  // namespace rlir::transport
