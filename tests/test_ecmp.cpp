// Unit tests: topo/ecmp.h — hashing, routing, and reverse-ECMP computation.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "common/rng.h"
#include "topo/ecmp.h"

namespace rlir::topo {
namespace {

net::FiveTuple random_key(common::Xoshiro256& rng) {
  net::FiveTuple key;
  key.src = net::Ipv4Address(static_cast<std::uint32_t>(rng.next()));
  key.dst = net::Ipv4Address(static_cast<std::uint32_t>(rng.next()));
  key.src_port = static_cast<std::uint16_t>(rng.next());
  key.dst_port = static_cast<std::uint16_t>(rng.next());
  key.proto = 6;
  return key;
}

TEST(EcmpHasher, DeterministicPerKeyAndSalt) {
  const Crc32EcmpHasher hasher;
  common::Xoshiro256 rng(1);
  const auto key = random_key(rng);
  EXPECT_EQ(hasher.hash(key, 42), hasher.hash(key, 42));
  EXPECT_NE(hasher.hash(key, 42), hasher.hash(key, 43));
}

TEST(EcmpHasher, SelectRespectsFanout) {
  const JenkinsEcmpHasher hasher;
  common::Xoshiro256 rng(2);
  for (int i = 0; i < 1000; ++i) {
    const auto choice = hasher.select(random_key(rng), 7, 4);
    EXPECT_LT(choice, 4u);
  }
  EXPECT_EQ(hasher.select(random_key(rng), 7, 0), 0u);
}

TEST(EcmpHasher, Names) {
  EXPECT_EQ(Crc32EcmpHasher{}.name(), "crc32c");
  EXPECT_EQ(JenkinsEcmpHasher{}.name(), "jenkins");
  EXPECT_EQ(XorFoldEcmpHasher{}.name(), "xorfold");
}

TEST(RouterSalt, DistinctPerNode) {
  const FatTree topo(4);
  std::set<std::uint64_t> salts;
  for (std::size_t i = 0; i < static_cast<std::size_t>(topo.switch_count()); ++i) {
    salts.insert(router_salt(topo, topo.from_flat_index(i)));
  }
  EXPECT_EQ(salts.size(), static_cast<std::size_t>(topo.switch_count()));
}

TEST(EcmpRoute, SameTorIsTrivial) {
  const FatTree topo(4);
  const Crc32EcmpHasher hasher;
  net::FiveTuple key;
  const auto route = ecmp_route(topo, hasher, key, topo.tor(0, 0), topo.tor(0, 0));
  ASSERT_EQ(route.size(), 1u);
}

TEST(EcmpRoute, SamePodRoutesViaOneEdge) {
  const FatTree topo(4);
  const Crc32EcmpHasher hasher;
  common::Xoshiro256 rng(3);
  for (int i = 0; i < 200; ++i) {
    const auto route =
        ecmp_route(topo, hasher, random_key(rng), topo.tor(1, 0), topo.tor(1, 1));
    ASSERT_EQ(route.size(), 3u);
    EXPECT_EQ(route[1].tier, Tier::kEdge);
    EXPECT_EQ(route[1].pod, 1);
  }
}

TEST(EcmpRoute, CrossPodRoutesAreValidAndDeterministic) {
  const FatTree topo(8);
  const Crc32EcmpHasher hasher;
  common::Xoshiro256 rng(4);
  for (int i = 0; i < 500; ++i) {
    const auto key = random_key(rng);
    const auto route = ecmp_route(topo, hasher, key, topo.tor(0, 1), topo.tor(5, 2));
    ASSERT_EQ(route.size(), 5u);
    for (std::size_t h = 0; h + 1 < route.size(); ++h) {
      EXPECT_TRUE(topo.adjacent(route[h], route[h + 1]));
    }
    // Deterministic: same key gives the same route.
    EXPECT_EQ(ecmp_route(topo, hasher, key, topo.tor(0, 1), topo.tor(5, 2)), route);
  }
}

TEST(EcmpRoute, SpreadsAcrossAllCores) {
  const FatTree topo(4);
  const Crc32EcmpHasher hasher;
  common::Xoshiro256 rng(5);
  std::map<int, int> core_hits;
  constexpr int kN = 4000;
  for (int i = 0; i < kN; ++i) {
    const auto route =
        ecmp_route(topo, hasher, random_key(rng), topo.tor(0, 0), topo.tor(3, 0));
    ++core_hits[route[2].index];
  }
  ASSERT_EQ(core_hits.size(), 4u) << "all cores must carry traffic";
  for (const auto& [core, hits] : core_hits) {
    EXPECT_NEAR(hits, kN / 4, kN / 4 * 0.25) << "core " << core;
  }
}

TEST(EcmpRoute, XorFoldPolarizes) {
  // The deliberately linear hasher: consecutive tiers make correlated
  // choices, so traffic collapses onto a strict subset of cores — the
  // classic polarization pathology the CRC hasher's finalizer avoids.
  const FatTree topo(4);
  const XorFoldEcmpHasher hasher;
  common::Xoshiro256 rng(6);
  std::set<int> cores_used;
  for (int i = 0; i < 4000; ++i) {
    const auto route =
        ecmp_route(topo, hasher, random_key(rng), topo.tor(0, 0), topo.tor(3, 0));
    cores_used.insert(route[2].index);
  }
  EXPECT_LT(cores_used.size(), 4u);
}

TEST(ReverseEcmp, SamePodThrows) {
  const FatTree topo(4);
  const Crc32EcmpHasher hasher;
  net::FiveTuple key;
  EXPECT_THROW((void)reverse_ecmp_core(topo, hasher, key, topo.tor(0, 0), topo.tor(0, 1)),
               std::invalid_argument);
}

// The core property of Section 3.1's downstream demux: the receiver-side
// computation recovers exactly the core the forward route used — for every
// hasher and fabric size.
struct ReverseEcmpCase {
  int k;
  const char* hasher;
};

class ReverseEcmpSweep : public ::testing::TestWithParam<ReverseEcmpCase> {
 protected:
  static std::unique_ptr<EcmpHasher> make_hasher(const std::string& name) {
    if (name == "crc32c") return std::make_unique<Crc32EcmpHasher>();
    if (name == "jenkins") return std::make_unique<JenkinsEcmpHasher>();
    return std::make_unique<XorFoldEcmpHasher>();
  }
};

TEST_P(ReverseEcmpSweep, MatchesForwardRoute) {
  const auto [k, hasher_name] = GetParam();
  const FatTree topo(k);
  const auto hasher = make_hasher(hasher_name);
  common::Xoshiro256 rng(7);
  const auto src = topo.tor(0, 0);
  const auto dst = topo.tor(k - 1, k / 2 - 1);
  for (int i = 0; i < 500; ++i) {
    const auto key = random_key(rng);
    const auto route = ecmp_route(topo, *hasher, key, src, dst);
    const auto inferred = reverse_ecmp_core(topo, *hasher, key, src, dst);
    EXPECT_EQ(route[2], inferred);
  }
}

INSTANTIATE_TEST_SUITE_P(Fabrics, ReverseEcmpSweep,
                         ::testing::Values(ReverseEcmpCase{4, "crc32c"},
                                           ReverseEcmpCase{4, "jenkins"},
                                           ReverseEcmpCase{4, "xorfold"},
                                           ReverseEcmpCase{8, "crc32c"},
                                           ReverseEcmpCase{16, "crc32c"}));

}  // namespace
}  // namespace rlir::topo
