// Unit tests: net/prefix_table.h — longest-prefix-match trie.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "net/prefix_table.h"

namespace rlir::net {
namespace {

TEST(PrefixTable, EmptyTableMatchesNothing) {
  const PrefixTable<int> table;
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.size(), 0u);
  EXPECT_FALSE(table.lookup(Ipv4Address(1, 2, 3, 4)));
  EXPECT_EQ(table.lookup_ptr(Ipv4Address(1, 2, 3, 4)), nullptr);
}

TEST(PrefixTable, ExactPrefixMatch) {
  PrefixTable<std::string> table;
  table.insert(Ipv4Prefix(Ipv4Address(10, 1, 0, 0), 16), "tor-a");
  EXPECT_EQ(table.lookup(Ipv4Address(10, 1, 2, 3)), "tor-a");
  EXPECT_FALSE(table.lookup(Ipv4Address(10, 2, 0, 0)));
  EXPECT_EQ(table.size(), 1u);
}

TEST(PrefixTable, LongestPrefixWins) {
  PrefixTable<std::string> table;
  table.insert(Ipv4Prefix(Ipv4Address(10, 0, 0, 0), 8), "wide");
  table.insert(Ipv4Prefix(Ipv4Address(10, 1, 0, 0), 16), "mid");
  table.insert(Ipv4Prefix(Ipv4Address(10, 1, 2, 0), 24), "narrow");

  EXPECT_EQ(table.lookup(Ipv4Address(10, 1, 2, 99)), "narrow");
  EXPECT_EQ(table.lookup(Ipv4Address(10, 1, 9, 9)), "mid");
  EXPECT_EQ(table.lookup(Ipv4Address(10, 200, 0, 1)), "wide");
  EXPECT_FALSE(table.lookup(Ipv4Address(11, 0, 0, 1)));
}

TEST(PrefixTable, DefaultRoute) {
  PrefixTable<int> table;
  table.insert(Ipv4Prefix(Ipv4Address(0u), 0), -1);
  table.insert(Ipv4Prefix(Ipv4Address(10, 0, 0, 0), 8), 10);
  EXPECT_EQ(table.lookup(Ipv4Address(10, 5, 5, 5)), 10);
  EXPECT_EQ(table.lookup(Ipv4Address(99, 9, 9, 9)), -1);
}

TEST(PrefixTable, InsertOverwrites) {
  PrefixTable<int> table;
  const Ipv4Prefix p(Ipv4Address(10, 0, 0, 0), 8);
  table.insert(p, 1);
  table.insert(p, 2);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.lookup(Ipv4Address(10, 0, 0, 1)), 2);
}

TEST(PrefixTable, HostRoutes) {
  PrefixTable<int> table;
  table.insert(Ipv4Prefix(Ipv4Address(10, 0, 0, 1), 32), 1);
  table.insert(Ipv4Prefix(Ipv4Address(10, 0, 0, 2), 32), 2);
  EXPECT_EQ(table.lookup(Ipv4Address(10, 0, 0, 1)), 1);
  EXPECT_EQ(table.lookup(Ipv4Address(10, 0, 0, 2)), 2);
  EXPECT_FALSE(table.lookup(Ipv4Address(10, 0, 0, 3)));
}

TEST(PrefixTable, FindExact) {
  PrefixTable<int> table;
  table.insert(Ipv4Prefix(Ipv4Address(10, 1, 0, 0), 16), 7);
  EXPECT_EQ(table.find_exact(Ipv4Prefix(Ipv4Address(10, 1, 0, 0), 16)), 7);
  // Covering/covered prefixes are not exact matches.
  EXPECT_FALSE(table.find_exact(Ipv4Prefix(Ipv4Address(10, 1, 0, 0), 24)));
  EXPECT_FALSE(table.find_exact(Ipv4Prefix(Ipv4Address(10, 0, 0, 0), 8)));
}

// Regression: inserting many prefixes reallocates the node vector; the trie
// must stay intact (this once hid a use-after-free on vector growth).
TEST(PrefixTable, ManyInsertsSurviveReallocation) {
  PrefixTable<int> table;
  for (int pod = 0; pod < 48; ++pod) {
    for (int tor = 0; tor < 24; ++tor) {
      table.insert(Ipv4Prefix(Ipv4Address(10, static_cast<std::uint8_t>(pod),
                                          static_cast<std::uint8_t>(tor), 0),
                              24),
                   pod * 100 + tor);
    }
  }
  EXPECT_EQ(table.size(), 48u * 24u);
  for (int pod = 0; pod < 48; ++pod) {
    for (int tor = 0; tor < 24; ++tor) {
      const auto hit = table.lookup(Ipv4Address(10, static_cast<std::uint8_t>(pod),
                                                static_cast<std::uint8_t>(tor), 9));
      ASSERT_TRUE(hit);
      EXPECT_EQ(*hit, pod * 100 + tor);
    }
  }
}

// Property: the trie agrees with brute-force LPM over random rule sets.
class PrefixTableRandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrefixTableRandomSweep, AgreesWithBruteForce) {
  common::Xoshiro256 rng(GetParam());
  PrefixTable<std::size_t> table;
  std::vector<Ipv4Prefix> rules;
  for (int i = 0; i < 200; ++i) {
    const auto len = static_cast<std::uint8_t>(rng.uniform_u64(25) + 8);  // /8../32
    const Ipv4Prefix p(Ipv4Address(static_cast<std::uint32_t>(rng.next())), len);
    // Skip duplicates (insert would overwrite; brute force keeps first).
    bool dup = false;
    for (const auto& r : rules) dup = dup || r == p;
    if (dup) continue;
    table.insert(p, rules.size());
    rules.push_back(p);
  }

  for (int i = 0; i < 2000; ++i) {
    const Ipv4Address addr(static_cast<std::uint32_t>(rng.next()));
    // Brute force: the longest rule containing addr.
    int best = -1;
    for (std::size_t r = 0; r < rules.size(); ++r) {
      if (rules[r].contains(addr) &&
          (best < 0 || rules[r].length() > rules[static_cast<std::size_t>(best)].length())) {
        best = static_cast<int>(r);
      }
    }
    const auto got = table.lookup(addr);
    if (best < 0) {
      EXPECT_FALSE(got);
    } else {
      ASSERT_TRUE(got);
      EXPECT_EQ(rules[*got].length(), rules[static_cast<std::size_t>(best)].length());
      EXPECT_TRUE(rules[*got].contains(addr));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefixTableRandomSweep, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace rlir::net
