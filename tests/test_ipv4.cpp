// Unit tests: net/ipv4.h — addresses and CIDR prefixes.
#include <gtest/gtest.h>

#include "net/ipv4.h"

namespace rlir::net {
namespace {

TEST(Ipv4Address, OctetConstruction) {
  const Ipv4Address a(10, 1, 2, 3);
  EXPECT_EQ(a.value(), 0x0a010203u);
  EXPECT_EQ(a.octet(0), 10);
  EXPECT_EQ(a.octet(1), 1);
  EXPECT_EQ(a.octet(2), 2);
  EXPECT_EQ(a.octet(3), 3);
}

TEST(Ipv4Address, ToString) {
  EXPECT_EQ(Ipv4Address(192, 168, 0, 1).to_string(), "192.168.0.1");
  EXPECT_EQ(Ipv4Address(0, 0, 0, 0).to_string(), "0.0.0.0");
  EXPECT_EQ(Ipv4Address(255, 255, 255, 255).to_string(), "255.255.255.255");
}

TEST(Ipv4Address, ParseValid) {
  EXPECT_EQ(Ipv4Address::parse("10.1.2.3"), Ipv4Address(10, 1, 2, 3));
  EXPECT_EQ(Ipv4Address::parse("0.0.0.0"), Ipv4Address(0u));
  EXPECT_EQ(Ipv4Address::parse("255.255.255.255"), Ipv4Address(~0u));
}

TEST(Ipv4Address, ParseInvalid) {
  EXPECT_FALSE(Ipv4Address::parse(""));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4.5"));
  EXPECT_FALSE(Ipv4Address::parse("256.1.1.1"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.x"));
  EXPECT_FALSE(Ipv4Address::parse("1..2.3"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4 "));
  EXPECT_FALSE(Ipv4Address::parse("-1.2.3.4"));
}

TEST(Ipv4Address, RoundTrip) {
  for (const auto* text : {"10.0.0.1", "172.16.254.3", "8.8.8.8"}) {
    const auto a = Ipv4Address::parse(text);
    ASSERT_TRUE(a);
    EXPECT_EQ(a->to_string(), text);
  }
}

TEST(Ipv4Address, Ordering) {
  EXPECT_LT(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2));
  EXPECT_LT(Ipv4Address(9, 255, 255, 255), Ipv4Address(10, 0, 0, 0));
}

TEST(Ipv4Prefix, MaskComputation) {
  EXPECT_EQ(Ipv4Prefix(Ipv4Address(0u), 0).mask(), 0u);
  EXPECT_EQ(Ipv4Prefix(Ipv4Address(0u), 8).mask(), 0xff000000u);
  EXPECT_EQ(Ipv4Prefix(Ipv4Address(0u), 24).mask(), 0xffffff00u);
  EXPECT_EQ(Ipv4Prefix(Ipv4Address(0u), 32).mask(), 0xffffffffu);
}

TEST(Ipv4Prefix, CanonicalizesHostBits) {
  const Ipv4Prefix p(Ipv4Address(10, 1, 2, 3), 24);
  EXPECT_EQ(p.base(), Ipv4Address(10, 1, 2, 0));
  EXPECT_EQ(p.to_string(), "10.1.2.0/24");
}

TEST(Ipv4Prefix, ContainsAddress) {
  const Ipv4Prefix p(Ipv4Address(10, 1, 2, 0), 24);
  EXPECT_TRUE(p.contains(Ipv4Address(10, 1, 2, 0)));
  EXPECT_TRUE(p.contains(Ipv4Address(10, 1, 2, 255)));
  EXPECT_FALSE(p.contains(Ipv4Address(10, 1, 3, 0)));
  EXPECT_FALSE(p.contains(Ipv4Address(11, 1, 2, 1)));

  const Ipv4Prefix all(Ipv4Address(0u), 0);
  EXPECT_TRUE(all.contains(Ipv4Address(1, 2, 3, 4)));
}

TEST(Ipv4Prefix, ContainsPrefix) {
  const Ipv4Prefix wide(Ipv4Address(10, 0, 0, 0), 8);
  const Ipv4Prefix narrow(Ipv4Address(10, 1, 0, 0), 16);
  EXPECT_TRUE(wide.contains(narrow));
  EXPECT_FALSE(narrow.contains(wide));
  EXPECT_TRUE(wide.contains(wide));
}

TEST(Ipv4Prefix, SizeAndAddressAt) {
  const Ipv4Prefix p(Ipv4Address(10, 1, 2, 0), 24);
  EXPECT_EQ(p.size(), 256u);
  EXPECT_EQ(p.address_at(0), Ipv4Address(10, 1, 2, 0));
  EXPECT_EQ(p.address_at(255), Ipv4Address(10, 1, 2, 255));
  EXPECT_THROW((void)p.address_at(256), std::out_of_range);

  const Ipv4Prefix host(Ipv4Address(1, 2, 3, 4), 32);
  EXPECT_EQ(host.size(), 1u);
  EXPECT_EQ(host.address_at(0), Ipv4Address(1, 2, 3, 4));
}

TEST(Ipv4Prefix, ParseValid) {
  const auto p = Ipv4Prefix::parse("192.168.1.0/24");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->base(), Ipv4Address(192, 168, 1, 0));
  EXPECT_EQ(p->length(), 24);

  const auto q = Ipv4Prefix::parse("0.0.0.0/0");
  ASSERT_TRUE(q);
  EXPECT_EQ(q->length(), 0);
}

TEST(Ipv4Prefix, ParseInvalid) {
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0"));
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0/33"));
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0/24"));
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0/"));
  EXPECT_FALSE(Ipv4Prefix::parse("/24"));
}

// Sweep: canonicalization and contains() agree across every prefix length.
class PrefixLengthSweep : public ::testing::TestWithParam<int> {};

TEST_P(PrefixLengthSweep, BaseInsideItself) {
  const auto len = static_cast<std::uint8_t>(GetParam());
  const Ipv4Prefix p(Ipv4Address(172, 16, 33, 7), len);
  EXPECT_TRUE(p.contains(p.base()));
  EXPECT_EQ(p.base().value() & ~p.mask(), 0u);
  EXPECT_EQ(p.size(), std::uint64_t{1} << (32 - len));
  // Last address inside; one past it outside (when the prefix is not /0).
  const Ipv4Address last = p.address_at(p.size() - 1);
  EXPECT_TRUE(p.contains(last));
  if (len > 0 && last.value() != ~0u) {
    EXPECT_FALSE(p.contains(Ipv4Address(last.value() + 1)));
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, PrefixLengthSweep,
                         ::testing::Values(1, 4, 8, 12, 16, 20, 24, 28, 31, 32));

}  // namespace
}  // namespace rlir::net
