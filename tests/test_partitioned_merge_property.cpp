// Property-style exactness of partitioned collection: a seeded random
// record stream split across 1/2/4/8 partitions must merge back to
// bin-for-bin the same fleet sketch, link distributions, per-flow
// quantiles, and ranked top-k as the unpartitioned collector — under the
// flow-disjoint split PartitionedClient produces AND (for everything the
// resolver path covers) under an adversarial random per-record scatter.
// Failures log the seed so a run is reproducible.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "collect/sharded_collector.h"
#include "common/rng.h"
#include "net/hash.h"
#include "transport/coordinator.h"

namespace rlir::transport {
namespace {

/// A random stream: `flows` distinct five-tuples, `n` records drawn over
/// them with random links, epochs, and sketch payloads.
std::vector<collect::EstimateRecord> random_records(std::uint64_t seed, std::size_t flows,
                                                    std::size_t n) {
  common::Xoshiro256 rng(seed);
  std::vector<net::FiveTuple> keys;
  for (std::size_t i = 0; i < flows; ++i) {
    net::FiveTuple key;
    key.src = net::Ipv4Address(10, 0, static_cast<std::uint8_t>(rng.uniform_u64(4)),
                               static_cast<std::uint8_t>(rng.uniform_u64(250)));
    key.dst = net::Ipv4Address(10, 1, 0, static_cast<std::uint8_t>(rng.uniform_u64(250)));
    key.src_port = static_cast<std::uint16_t>(1024 + rng.uniform_u64(50000));
    key.dst_port = static_cast<std::uint16_t>(rng.bernoulli(0.5) ? 80 : 443);
    keys.push_back(key);
  }
  std::vector<collect::EstimateRecord> records;
  for (std::size_t i = 0; i < n; ++i) {
    collect::EstimateRecord r;
    r.key = keys[rng.uniform_u64(keys.size())];
    r.link = static_cast<collect::LinkId>(rng.uniform_u64(5));
    r.epoch = static_cast<std::uint32_t>(rng.uniform_u64(8));
    const std::size_t samples = 1 + rng.uniform_u64(40);
    for (std::size_t s = 0; s < samples; ++s) r.sketch.add(rng.lognormal(9.0, 1.5));
    records.push_back(std::move(r));
  }
  return records;
}

void expect_same_sketch(const common::LatencySketch& got, const common::LatencySketch& want) {
  EXPECT_EQ(got.bins(), want.bins());
  EXPECT_EQ(got.count(), want.count());
  EXPECT_EQ(got.zero_count(), want.zero_count());
}

/// Merged flow sketch across partitions (nullopt = no partition saw it).
std::optional<common::LatencySketch> merged_flow(
    const std::vector<collect::ShardedCollector>& parts, const net::FiveTuple& key) {
  std::vector<common::LatencySketch> sketches;
  for (const auto& part : parts) {
    if (const auto* sketch = part.flow(key)) sketches.push_back(*sketch);
  }
  if (sketches.empty()) return std::nullopt;
  return merge_fleet_sketches(sketches);
}

/// Runs every merge-exactness assertion for one split of `records`.
/// `disjoint` gates the k < flow_count top-k check (only answerable when
/// each flow's records live in one partition).
void check_split(const std::vector<collect::ShardedCollector>& parts,
                 collect::ShardedCollector& want,
                 const std::vector<collect::EstimateRecord>& records, bool disjoint) {
  // Fleet distribution: exact union.
  std::vector<common::LatencySketch> fleet_parts;
  for (const auto& part : parts) fleet_parts.push_back(part.fleet());
  expect_same_sketch(merge_fleet_sketches(fleet_parts), want.fleet());

  // Link distributions: exact union per link.
  for (const auto link : want.links()) {
    std::vector<common::LatencySketch> link_parts;
    for (const auto& part : parts) {
      if (auto dist = part.link_distribution(link)) link_parts.push_back(std::move(*dist));
    }
    ASSERT_FALSE(link_parts.empty()) << "link " << link << " lost in the split";
    expect_same_sketch(merge_fleet_sketches(link_parts), *want.link_distribution(link));
  }

  // Per-flow sketches and quantiles: bin-for-bin and value-exact.
  for (const auto& r : records) {
    const auto got = merged_flow(parts, r.key);
    ASSERT_TRUE(got.has_value()) << r.key.to_string();
    expect_same_sketch(*got, *want.flow(r.key));
    for (const double q : {0.5, 0.9, 0.99}) {
      EXPECT_EQ(got->quantile(q), *want.flow_quantile(r.key, q)) << r.key.to_string();
    }
  }

  const FlowResolver resolve = [&parts](const net::FiveTuple& key)
      -> std::optional<collect::RankedFlowSummary> {
    const auto sketch = merged_flow(parts, key);
    if (!sketch.has_value()) return std::nullopt;
    return collect::RankedFlowSummary{sketch->quantile(0.99), summarize_flow(key, *sketch)};
  };

  // Ranked top-k. Disjoint split: the global top-k is contained in the
  // union of per-part top-k lists, so small k is exactly answerable.
  // Overlapping split: only k = flow_count guarantees containment; the
  // resolver then rebuilds every rank exactly from merged sketches.
  for (const std::size_t k :
       disjoint ? std::vector<std::size_t>{1, 5, 10} : std::vector<std::size_t>{}) {
    std::vector<std::vector<collect::RankedFlowSummary>> top_parts;
    for (const auto& part : parts) top_parts.push_back(part.top_k_ranked(k, 0.99));
    const auto got = merge_ranked_top_k(top_parts, k, resolve);
    const auto expect = want.top_k_ranked(k, 0.99);
    ASSERT_EQ(got.size(), expect.size()) << "k=" << k;
    for (std::size_t i = 0; i < expect.size(); ++i) {
      EXPECT_EQ(got[i].second.key, expect[i].second.key) << "k=" << k << " rank " << i;
      EXPECT_EQ(got[i].first, expect[i].first) << "k=" << k << " rank " << i;
      EXPECT_EQ(got[i].second.packets, expect[i].second.packets) << "k=" << k << " rank " << i;
    }
  }
  {
    const std::size_t k = want.flow_count();
    std::vector<std::vector<collect::RankedFlowSummary>> top_parts;
    for (const auto& part : parts) top_parts.push_back(part.top_k_ranked(k, 0.99));
    const auto got = merge_ranked_top_k(top_parts, k, resolve);
    const auto expect = want.top_k_ranked(k, 0.99);
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t i = 0; i < expect.size(); ++i) {
      EXPECT_EQ(got[i].second.key, expect[i].second.key) << "rank " << i;
      EXPECT_EQ(got[i].first, expect[i].first) << "rank " << i;
    }
  }
}

TEST(PartitionedMergeProperty, FlowDisjointSplitsMergeBackExactly) {
  for (const std::uint64_t seed : {101ULL, 202ULL, 303ULL}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const auto records = random_records(seed, 60, 400);
    collect::ShardedCollector want;
    want.ingest(records);

    for (const std::size_t partitions : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                         std::size_t{8}}) {
      SCOPED_TRACE("partitions=" + std::to_string(partitions));
      // The PartitionedClient split: one extra mix64 round over the flow
      // hash, every flow wholly inside one partition.
      std::vector<collect::ShardedCollector> parts(partitions);
      for (const auto& r : records) {
        parts[net::mix64(r.key.hash()) % partitions].ingest(r);
      }
      check_split(parts, want, records, /*disjoint=*/true);
    }
  }
}

TEST(PartitionedMergeProperty, RandomScatterStillMergesSketchesExactly) {
  // Adversarial split: records of one flow scattered at random (what a
  // mid-stream rebalance can produce transiently). Sketch unions and
  // resolver-backed top-k remain exact; only small-k containment is gone.
  for (const std::uint64_t seed : {7ULL, 8ULL}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const auto records = random_records(seed, 40, 300);
    collect::ShardedCollector want;
    want.ingest(records);

    common::Xoshiro256 scatter(seed ^ 0xabcdef);
    std::vector<collect::ShardedCollector> parts(4);
    for (const auto& r : records) parts[scatter.uniform_u64(parts.size())].ingest(r);
    check_split(parts, want, records, /*disjoint=*/false);
  }
}

}  // namespace
}  // namespace rlir::transport
