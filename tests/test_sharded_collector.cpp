// ShardedCollector: hash routing, cross-shard/epoch/replica merging, the
// query API (flow quantiles, link distributions, fleet union, top-k), and
// the bounded-memory accounting.
#include "collect/sharded_collector.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace rlir::collect {
namespace {

net::FiveTuple make_key(std::uint32_t i) {
  net::FiveTuple key;
  key.src = net::Ipv4Address(10, 1, static_cast<std::uint8_t>(i >> 8),
                             static_cast<std::uint8_t>(i));
  key.dst = net::Ipv4Address(192, 168, 0, 1);
  key.src_port = static_cast<std::uint16_t>(2000 + i);
  key.dst_port = 443;
  key.proto = static_cast<std::uint8_t>(net::IpProto::kUdp);
  return key;
}

EstimateRecord make_record(std::uint32_t flow, LinkId link, std::uint32_t epoch,
                           double latency_base, common::Xoshiro256& rng, int samples = 100) {
  EstimateRecord r;
  r.key = make_key(flow);
  r.link = link;
  r.epoch = epoch;
  r.sender = 1;
  for (int i = 0; i < samples; ++i) r.sketch.add(latency_base * rng.uniform(0.5, 1.5));
  return r;
}

TEST(ShardedCollectorTest, ZeroShardsThrows) {
  EXPECT_THROW(ShardedCollector(CollectorConfig{0, {}}), std::invalid_argument);
}

TEST(ShardedCollectorTest, FlowQueriesMatchDirectSketch) {
  common::Xoshiro256 rng(21);
  ShardedCollector collector;
  auto r = make_record(7, 0, 0, 50e3, rng);
  collector.ingest(r);

  const auto* sketch = collector.flow(r.key);
  ASSERT_NE(sketch, nullptr);
  EXPECT_EQ(sketch->count(), r.sketch.count());
  EXPECT_EQ(sketch->bins(), r.sketch.bins());
  EXPECT_EQ(collector.flow_quantile(r.key, 0.5), r.sketch.quantile(0.5));

  const auto summary = collector.flow_summary(r.key);
  ASSERT_TRUE(summary.has_value());
  EXPECT_EQ(summary->packets, r.sketch.count());
  EXPECT_EQ(summary->p99_ns, r.sketch.quantile(0.99));

  EXPECT_EQ(collector.flow(make_key(999)), nullptr);
  EXPECT_FALSE(collector.flow_quantile(make_key(999), 0.5).has_value());
}

TEST(ShardedCollectorTest, RecordsForSameFlowMergeAcrossLinksAndEpochs) {
  common::Xoshiro256 rng(22);
  ShardedCollector collector;
  auto a = make_record(1, /*link=*/0, /*epoch=*/0, 40e3, rng);
  auto b = make_record(1, /*link=*/3, /*epoch=*/1, 90e3, rng);
  collector.ingest(a);
  collector.ingest(b);

  auto direct = a.sketch;
  direct.merge(b.sketch);
  const auto* sketch = collector.flow(a.key);
  ASSERT_NE(sketch, nullptr);
  EXPECT_EQ(sketch->bins(), direct.bins());
  EXPECT_EQ(sketch->count(), direct.count());
  EXPECT_EQ(collector.epoch_count(), 2u);
  EXPECT_EQ(collector.flow_count(), 1u);
}

TEST(ShardedCollectorTest, ShardingSpreadsFlowsDeterministically) {
  common::Xoshiro256 rng(23);
  CollectorConfig config;
  config.shard_count = 4;
  ShardedCollector collector(config);
  for (std::uint32_t i = 0; i < 200; ++i) {
    collector.ingest(make_record(i, 0, 0, 60e3, rng, 5));
  }
  EXPECT_EQ(collector.flow_count(), 200u);
  const auto counts = collector.shard_flow_counts();
  ASSERT_EQ(counts.size(), 4u);
  std::size_t total = 0;
  for (std::size_t c : counts) {
    EXPECT_GT(c, 0u);  // 200 hashed flows never all land in 3 of 4 shards
    total += c;
  }
  EXPECT_EQ(total, 200u);
  // Routing is pure hash: flow i's shard is key.hash() % shards.
  for (std::uint32_t i = 0; i < 200; i += 17) {
    EXPECT_NE(collector.flow(make_key(i)), nullptr);
  }
}

TEST(ShardedCollectorTest, LinkAndFleetDistributions) {
  common::Xoshiro256 rng(24);
  ShardedCollector collector;
  // Link 0: fast (10us base); link 1: slow (200us base).
  common::LatencySketch link0_direct, link1_direct;
  for (std::uint32_t i = 0; i < 50; ++i) {
    auto r = make_record(i, 0, 0, 10e3, rng, 20);
    link0_direct.merge(r.sketch);
    collector.ingest(r);
  }
  for (std::uint32_t i = 50; i < 80; ++i) {
    auto r = make_record(i, 1, 0, 200e3, rng, 20);
    link1_direct.merge(r.sketch);
    collector.ingest(r);
  }

  EXPECT_EQ(collector.links(), (std::vector<LinkId>{0, 1}));
  const auto link0 = collector.link_distribution(0);
  const auto link1 = collector.link_distribution(1);
  ASSERT_TRUE(link0.has_value());
  ASSERT_TRUE(link1.has_value());
  EXPECT_EQ(link0->bins(), link0_direct.bins());
  EXPECT_EQ(link1->bins(), link1_direct.bins());
  EXPECT_LT(link0->quantile(0.99), link1->quantile(0.01));
  EXPECT_FALSE(collector.link_distribution(42).has_value());

  auto fleet_direct = link0_direct;
  fleet_direct.merge(link1_direct);
  const auto fleet = collector.fleet();
  EXPECT_EQ(fleet.bins(), fleet_direct.bins());
  EXPECT_EQ(fleet.count(), fleet_direct.count());
}

TEST(ShardedCollectorTest, TopKWorstFlows) {
  common::Xoshiro256 rng(25);
  ShardedCollector collector;
  // 20 ordinary flows around 50us, 3 outliers at distinct high latencies.
  for (std::uint32_t i = 0; i < 20; ++i) collector.ingest(make_record(i, 0, 0, 50e3, rng));
  collector.ingest(make_record(100, 0, 0, 900e3, rng));
  collector.ingest(make_record(101, 0, 0, 700e3, rng));
  collector.ingest(make_record(102, 0, 0, 500e3, rng));

  const auto top = collector.top_k_flows(3, 0.99);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, make_key(100));
  EXPECT_EQ(top[1].key, make_key(101));
  EXPECT_EQ(top[2].key, make_key(102));
  EXPECT_GT(top[0].p99_ns, top[1].p99_ns);

  // k larger than the flow count returns everything, still sorted.
  const auto all = collector.top_k_flows(1000, 0.99);
  EXPECT_EQ(all.size(), collector.flow_count());
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_GE(all[i - 1].p99_ns, all[i].p99_ns);
  }
}

TEST(ShardedCollectorTest, TopKIndexMatchesFullScanOn10kRandomFlows) {
  // The acceptance bar for the ingest-maintained rank index: on a 10k-flow
  // randomized workload with repeated per-flow updates (quantiles move both
  // up and down as records merge), the O(k·shards) heap path must return
  // exactly what the full scan returns — same flows, same order, same
  // values — for every k.
  common::Xoshiro256 rng(31);
  CollectorConfig config;
  config.shard_count = 8;
  ShardedCollector collector(config);
  constexpr std::uint32_t kFlows = 10'000;
  // Two passes so ~every flow gets a second record whose random base can be
  // far above or below the first — the update path, not just inserts.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint32_t i = 0; i < kFlows; ++i) {
      collector.ingest(
          make_record(i, i % 5, pass, rng.uniform(5e3, 500e3), rng, /*samples=*/4));
    }
  }
  ASSERT_EQ(collector.flow_count(), kFlows);

  for (const std::size_t k : {std::size_t{1}, std::size_t{10}, std::size_t{100},
                              std::size_t{2'000}, std::size_t{20'000}}) {
    const auto fast = collector.top_k_flows(k, 0.99);
    const auto scan = collector.top_k_flows_scan(k, 0.99);
    ASSERT_EQ(fast.size(), scan.size()) << "k=" << k;
    for (std::size_t i = 0; i < fast.size(); ++i) {
      ASSERT_EQ(fast[i].key, scan[i].key) << "k=" << k << " rank " << i;
      ASSERT_EQ(fast[i].p99_ns, scan[i].p99_ns) << "k=" << k << " rank " << i;
      ASSERT_EQ(fast[i].packets, scan[i].packets) << "k=" << k << " rank " << i;
    }
  }

  // A quantile the index is not keyed on transparently falls back to the
  // scan — still correct, just not O(k).
  const auto fast_p50 = collector.top_k_flows(25, 0.5);
  const auto scan_p50 = collector.top_k_flows_scan(25, 0.5);
  ASSERT_EQ(fast_p50.size(), scan_p50.size());
  for (std::size_t i = 0; i < fast_p50.size(); ++i) {
    EXPECT_EQ(fast_p50[i].key, scan_p50[i].key);
  }
}

TEST(ShardedCollectorTest, TopKIndexSurvivesReplicaMerge) {
  // merge() routes through the same index maintenance as ingest(); the
  // merged collector's heap path must agree with its scan path.
  common::Xoshiro256 rng(32);
  ShardedCollector a(CollectorConfig{4, {}});
  ShardedCollector b(CollectorConfig{2, {}});
  for (std::uint32_t i = 0; i < 300; ++i) {
    (i % 2 == 0 ? a : b).ingest(make_record(i % 90, 0, 0, rng.uniform(10e3, 300e3), rng, 8));
  }
  a.merge(b);
  const auto fast = a.top_k_flows(15, 0.99);
  const auto scan = a.top_k_flows_scan(15, 0.99);
  ASSERT_EQ(fast.size(), scan.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i].key, scan[i].key) << "rank " << i;
    EXPECT_EQ(fast[i].p99_ns, scan[i].p99_ns) << "rank " << i;
  }
}

TEST(ShardedCollectorTest, BadTopKQuantileThrows) {
  CollectorConfig config;
  config.top_k_quantile = -0.1;
  EXPECT_THROW(ShardedCollector{config}, std::invalid_argument);
  config.top_k_quantile = 1.01;
  EXPECT_THROW(ShardedCollector{config}, std::invalid_argument);
}

TEST(ShardedCollectorTest, ReplicaMergeEqualsSingleCollector) {
  // Two collector replicas (different shard counts, interleaved batches)
  // merged together must equal one collector that saw every record.
  common::Xoshiro256 rng_a(26);
  std::vector<EstimateRecord> records;
  for (std::uint32_t i = 0; i < 60; ++i) {
    records.push_back(make_record(i % 25, i % 4, i % 3, 30e3 + 1e3 * i, rng_a, 30));
  }

  ShardedCollector whole(CollectorConfig{8, {}});
  whole.ingest(records);

  ShardedCollector replica_a(CollectorConfig{8, {}});
  ShardedCollector replica_b(CollectorConfig{3, {}});
  for (std::size_t i = 0; i < records.size(); ++i) {
    (i % 2 == 0 ? replica_a : replica_b).ingest(records[i]);
  }
  replica_a.merge(replica_b);

  EXPECT_EQ(replica_a.flow_count(), whole.flow_count());
  EXPECT_EQ(replica_a.records_ingested(), whole.records_ingested());
  EXPECT_EQ(replica_a.estimates_ingested(), whole.estimates_ingested());
  EXPECT_EQ(replica_a.epoch_count(), whole.epoch_count());
  for (std::uint32_t i = 0; i < 25; ++i) {
    const auto* merged = replica_a.flow(make_key(i));
    const auto* direct = whole.flow(make_key(i));
    ASSERT_NE(merged, nullptr);
    ASSERT_NE(direct, nullptr);
    EXPECT_EQ(merged->bins(), direct->bins()) << "flow " << i;
  }
  EXPECT_EQ(replica_a.fleet().bins(), whole.fleet().bins());
}

TEST(ShardedCollectorTest, MemoryIsBoundedBySketchSizeNotSamples) {
  common::Xoshiro256 rng(27);
  CollectorConfig config;
  config.sketch.max_bins = 128;
  ShardedCollector collector(config);
  // One flow, a million estimates: resident bytes must stay O(bins).
  collector.ingest(make_record(1, 0, 0, 80e3, rng, 1'000'000));
  EXPECT_EQ(collector.estimates_ingested(), 1'000'000u);
  const auto* sketch = collector.flow(make_key(1));
  ASSERT_NE(sketch, nullptr);
  EXPECT_LE(sketch->bin_count(), 128u);
  // Generous per-bin envelope (map node overhead), nowhere near 1M samples.
  EXPECT_LT(collector.approx_flow_bytes(), 128 * 64 + 256);
}

TEST(ShardedCollectorTest, AccuracyMismatchRejectedWithoutSideEffects) {
  ShardedCollector collector;  // default 1% sketches
  EstimateRecord r;
  r.key = make_key(1);
  r.sketch = common::LatencySketch(common::LatencySketchConfig{0.05, 128});
  r.sketch.add(100.0);
  EXPECT_THROW(collector.ingest(r), std::invalid_argument);
  // The rejected record must leave no phantom state behind.
  EXPECT_EQ(collector.flow_count(), 0u);
  EXPECT_EQ(collector.flow(r.key), nullptr);
  EXPECT_TRUE(collector.links().empty());
  EXPECT_EQ(collector.records_ingested(), 0u);
}

TEST(ShardedCollectorTest, MergeAccuracyMismatchRejectedWithoutSideEffects) {
  common::Xoshiro256 rng(29);
  ShardedCollector collector;  // default 1% sketches
  ShardedCollector replica(CollectorConfig{2, common::LatencySketchConfig{0.05, 128}});
  EstimateRecord r = make_record(1, 0, 0, 50e3, rng, 10);
  r.sketch = common::LatencySketch(common::LatencySketchConfig{0.05, 128});
  r.sketch.add(100.0);
  replica.ingest(r);

  EXPECT_THROW(collector.merge(replica), std::invalid_argument);
  EXPECT_EQ(collector.flow_count(), 0u);
  EXPECT_TRUE(collector.links().empty());
  EXPECT_EQ(collector.records_ingested(), 0u);
}

TEST(ShardedCollectorTest, SelfMergeDoublesEveryAggregate) {
  common::Xoshiro256 rng(28);
  ShardedCollector collector(CollectorConfig{4, {}});
  for (std::uint32_t i = 0; i < 30; ++i) {
    collector.ingest(make_record(i % 10, i % 3, 0, 40e3, rng, 20));
  }
  const auto flows_before = collector.flow_count();
  const auto estimates_before = collector.estimates_ingested();
  const auto fleet_before = collector.fleet();

  collector.merge(collector);

  EXPECT_EQ(collector.flow_count(), flows_before);
  EXPECT_EQ(collector.estimates_ingested(), 2 * estimates_before);
  const auto fleet_after = collector.fleet();
  EXPECT_EQ(fleet_after.count(), 2 * fleet_before.count());
  for (const auto link : collector.links()) {
    // Exactly doubled, not the inconsistent re-homing double-count.
    EXPECT_EQ(collector.link_distribution(link)->count() % 2, 0u);
  }
  for (const auto& [index, count] : fleet_before.bins()) {
    EXPECT_EQ(fleet_after.bins().at(index), 2 * count);
  }
}

}  // namespace
}  // namespace rlir::collect
