// Shared E2E workload for the transport-tier acceptance tests: a FatTreeSim
// fleet (2 source ToRs -> 1 destination ToR, core + destination vantages,
// scheduler-driven epochs) whose record batches are bit-identical run to
// run — so a baseline run collected in-process and a transport run shipped
// over byte streams can be compared bin for bin.
//
// Used by test_transport_e2e (single agent), test_fleet_coordinator_e2e
// (partitioned 4-agent fleet) and test_fleet_coordinator_fault (agent kill
// mid-stream).
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "collect/epoch_scheduler.h"
#include "collect/fleet.h"
#include "rli/sender.h"
#include "rlir/demux.h"
#include "rlir/sender_agent.h"
#include "timebase/clock.h"
#include "topo/fattree_sim.h"
#include "trace/synthetic.h"

namespace rlir::testutil {

inline constexpr int kWorkloadFatTreeK = 4;
inline constexpr std::size_t kWorkloadShards = 4;

/// Runs the standard fleet workload. Every sink in `sinks` receives the
/// full batch stream (none = collect into the in-process collector);
/// `between_steps` runs after each simulation step AND once after the final
/// epoch — the hook transport runs use to pump clients / poll agents inline
/// with the simulation. Returns the fleet's local collector state (empty
/// when sinks diverted collection).
template <typename BetweenSteps>
collect::ShardedCollector run_fleet_workload(
    std::vector<collect::EpochScheduler::BatchSink> sinks, BetweenSteps between_steps) {
  using timebase::Duration;

  topo::FatTree topo(kWorkloadFatTreeK);
  topo::Crc32EcmpHasher hasher;
  timebase::PerfectClock clock;
  topo::FatTreeSim sim(&topo, topo::FatTreeSimConfig{}, &hasher);

  const auto src_a = topo.tor(0, 0);
  const auto src_b = topo.tor(0, 1);
  const auto dst = topo.tor(3, 0);
  const auto cores = topo.cores();
  sim.add_extra_delay(topo.core(1), Duration::microseconds(40));

  rli::SenderConfig s1_cfg;
  s1_cfg.id = 1;
  s1_cfg.static_gap = 50;
  rlir::TorSenderAgent s1(s1_cfg, &clock, cores);
  sim.add_agent(src_a, &s1);
  rli::SenderConfig s2_cfg = s1_cfg;
  s2_cfg.id = 2;
  rlir::TorSenderAgent s2(s2_cfg, &clock, cores);
  sim.add_agent(src_b, &s2);

  rlir::PrefixDemux up_demux;
  up_demux.add_origin(topo.host_prefix(src_a), 1);
  up_demux.add_origin(topo.host_prefix(src_b), 2);

  rlir::ReverseEcmpDemux down_demux(&topo, &hasher, dst);
  std::vector<std::unique_ptr<rlir::CoreSenderAgent>> core_senders;
  for (int c = 0; c < topo.core_count(); ++c) {
    rli::SenderConfig cfg;
    cfg.id = static_cast<net::SenderId>(10 + c);
    cfg.static_gap = 50;
    core_senders.push_back(std::make_unique<rlir::CoreSenderAgent>(
        cfg, &clock, std::vector<topo::NodeId>{dst}));
    sim.add_agent(topo.core(c), core_senders.back().get());
    down_demux.set_sender_at_core(c, cfg.id);
  }

  collect::FleetConfig fleet_cfg;
  fleet_cfg.collector.shard_count = kWorkloadShards;
  collect::FleetCollector fleet(fleet_cfg, &clock);
  for (auto& sink : sinks) fleet.add_batch_sink(std::move(sink));
  for (const auto& core : cores) fleet.deploy(sim, core, &up_demux);
  fleet.deploy(sim, dst, &down_demux);

  for (const auto src : {src_a, src_b}) {
    trace::SyntheticConfig cfg;
    cfg.duration = Duration::milliseconds(20);
    cfg.offered_bps = 1.0e9;
    cfg.seed = src == src_a ? 61 : 62;
    cfg.src_pool = topo.host_prefix(src);
    cfg.dst_pool = topo.host_prefix(dst);
    cfg.first_seq = cfg.seed * 100'000'000ULL;
    for (const auto& pkt : trace::SyntheticTraceGenerator(cfg).generate_all()) {
      sim.inject_from_host(pkt);
    }
  }

  collect::EpochSchedulerConfig sched_cfg;
  sched_cfg.period = Duration::milliseconds(5);
  sched_cfg.max_flow_idle = Duration::milliseconds(2);
  collect::EpochScheduler scheduler(sched_cfg);
  fleet.attach_scheduler(scheduler);

  const Duration step = Duration::milliseconds(1);
  timebase::TimePoint t = timebase::TimePoint::zero();
  while (sim.events_pending()) {
    t += step;
    sim.run_until(t);
    scheduler.advance_to(t);
    between_steps();
  }
  scheduler.advance_to(sim.now() + sched_cfg.period);
  between_steps();

  return fleet.collector();
}

/// The in-process ground truth every transport run is compared against.
inline collect::ShardedCollector fleet_baseline_state() {
  return run_fleet_workload({}, [] {});
}

/// Bin-for-bin equality of two collectors' entire observable state.
inline void expect_identical_collectors(collect::ShardedCollector& got,
                                        collect::ShardedCollector& want) {
  ASSERT_GT(want.records_ingested(), 0u);
  EXPECT_EQ(got.records_ingested(), want.records_ingested());
  EXPECT_EQ(got.estimates_ingested(), want.estimates_ingested());
  EXPECT_EQ(got.flow_count(), want.flow_count());
  EXPECT_EQ(got.epochs_seen(), want.epochs_seen());

  // Fleet-wide and per-vantage distributions, exact.
  EXPECT_EQ(got.fleet().bins(), want.fleet().bins());
  EXPECT_EQ(got.fleet().count(), want.fleet().count());
  ASSERT_EQ(got.links(), want.links());
  for (const auto link : want.links()) {
    const auto got_dist = got.link_distribution(link);
    const auto want_dist = want.link_distribution(link);
    ASSERT_TRUE(got_dist.has_value());
    EXPECT_EQ(got_dist->bins(), want_dist->bins()) << "link " << link;
  }

  // Every flow's merged sketch, bin for bin (top_k with k = all flows
  // enumerates them deterministically).
  const auto all = want.top_k_flows(want.flow_count(), 0.99);
  ASSERT_EQ(all.size(), want.flow_count());
  for (const auto& flow : all) {
    const auto* got_sketch = got.flow(flow.key);
    const auto* want_sketch = want.flow(flow.key);
    ASSERT_NE(got_sketch, nullptr) << flow.key.to_string();
    EXPECT_EQ(got_sketch->bins(), want_sketch->bins()) << flow.key.to_string();
    EXPECT_EQ(got_sketch->count(), want_sketch->count()) << flow.key.to_string();
    EXPECT_EQ(got_sketch->sum(), want_sketch->sum()) << flow.key.to_string();
  }

  // And the ranked answers a higher tier would consume.
  const auto got_top = got.top_k_flows(10, 0.99);
  const auto want_top = want.top_k_flows(10, 0.99);
  ASSERT_EQ(got_top.size(), want_top.size());
  for (std::size_t i = 0; i < want_top.size(); ++i) {
    EXPECT_EQ(got_top[i].key, want_top[i].key) << "rank " << i;
    EXPECT_EQ(got_top[i].p99_ns, want_top[i].p99_ns) << "rank " << i;
  }
}

}  // namespace rlir::testutil
