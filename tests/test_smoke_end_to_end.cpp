// Deterministic end-to-end smoke test: the canary for refactors.
//
// A tiny fixed-seed two-hop RLI experiment through the shared harness
// (exp::run_two_hop_experiment — the same path every bench binary takes).
// Asserts the per-flow latency estimates land within a loose tolerance of
// ground truth, and that the whole run is bit-for-bit repeatable. If a
// refactor breaks packet flow, interpolation, or the accuracy join, this
// fails in under a second.
#include <gtest/gtest.h>

#include <cstdint>

#include "exp/experiment.h"

namespace rlir {
namespace {

struct SmokeOutput {
  exp::ExperimentResult result;
  double est_mean_ns = 0.0;    // fleet-wide average of per-flow estimated means
  double truth_mean_ns = 0.0;  // same, from ground truth
};

SmokeOutput run_smoke() {
  exp::ExperimentConfig cfg;
  cfg.duration = timebase::Duration::milliseconds(40);
  cfg.regular_utilization = 0.25;
  cfg.target_utilization = 0.85;
  cfg.scheme = rli::InjectionScheme::kStatic;
  cfg.static_gap = 50;
  cfg.seed = 12345;

  SmokeOutput out;
  out.result = exp::run_two_hop_experiment(cfg);

  double truth_sum = 0.0, est_sum = 0.0;
  std::uint64_t n = 0;
  for (const auto& s : out.result.report.samples()) {
    truth_sum += s.true_mean;
    est_sum += s.est_mean;
    ++n;
  }
  if (n > 0) {
    out.truth_mean_ns = truth_sum / static_cast<double>(n);
    out.est_mean_ns = est_sum / static_cast<double>(n);
  }
  return out;
}

TEST(SmokeEndToEnd, EstimatesLandNearGroundTruth) {
  const auto out = run_smoke();

  // The experiment actually happened: traffic flowed and probes were injected.
  ASSERT_GT(out.result.pipeline.regular_delivered, 1'000u);
  ASSERT_GT(out.result.pipeline.cross_delivered, 1'000u);
  ASSERT_GT(out.result.references_injected, 10u);
  ASSERT_GT(out.result.report.flow_count(), 10u);
  EXPECT_NEAR(out.result.measured_utilization, 0.85, 0.08);

  // Loose per-flow tolerance: at ~85% bottleneck utilization the paper's
  // scheme achieves a few percent median relative error; 35% is the canary
  // threshold, not a precision claim.
  EXPECT_LT(out.result.report.median_mean_error(), 0.35);

  // The fleet-wide average estimate must be the right order of magnitude too
  // (catches systematic bias that per-flow relative error could mask).
  ASSERT_GT(out.truth_mean_ns, 0.0);
  EXPECT_NEAR(out.est_mean_ns / out.truth_mean_ns, 1.0, 0.35);
}

TEST(SmokeEndToEnd, FixedSeedRunIsBitForBitRepeatable) {
  const auto a = run_smoke();
  const auto b = run_smoke();

  EXPECT_EQ(a.result.pipeline.regular_delivered, b.result.pipeline.regular_delivered);
  EXPECT_EQ(a.result.pipeline.cross_delivered, b.result.pipeline.cross_delivered);
  EXPECT_EQ(a.result.pipeline.regular_dropped, b.result.pipeline.regular_dropped);
  EXPECT_EQ(a.result.references_injected, b.result.references_injected);
  EXPECT_EQ(a.result.report.flow_count(), b.result.report.flow_count());
  EXPECT_DOUBLE_EQ(a.result.report.median_mean_error(),
                   b.result.report.median_mean_error());
  EXPECT_DOUBLE_EQ(a.result.true_mean_latency_ns, b.result.true_mean_latency_ns);
  EXPECT_DOUBLE_EQ(a.est_mean_ns, b.est_mean_ns);
  EXPECT_DOUBLE_EQ(a.truth_mean_ns, b.truth_mean_ns);
}

}  // namespace
}  // namespace rlir
