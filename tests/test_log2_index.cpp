// Oracle tests for the log-free bin indexers: over random values spanning
// the full trackable range AND adversarial values sitting exactly on (or one
// ulp either side of) bin boundaries, the fast indexers must return the SAME
// bin as the original libm expressions — not a close bin, the same bin.
#include "common/log2_index.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <random>

#include "common/histogram.h"
#include "common/latency_sketch.h"

namespace rlir::common {
namespace {

std::int32_t sketch_oracle(double value, double log_gamma) {
  return static_cast<std::int32_t>(std::ceil(std::log(value) / log_gamma));
}

std::size_t histogram_oracle(double value, double log_lo, double width) {
  return static_cast<std::size_t>((std::log10(value) - log_lo) / width);
}

double log_gamma_for(double accuracy) {
  return std::log((1.0 + accuracy) / (1.0 - accuracy));
}

TEST(FastLog2, MatchesLibmWithinBound) {
  std::mt19937_64 rng(1);
  std::uniform_real_distribution<double> exponents(-300.0, 300.0);
  for (int i = 0; i < 200000; ++i) {
    const double v = std::exp2(exponents(rng));
    ASSERT_TRUE(fast_log2_usable(v));
    EXPECT_NEAR(fast_log2(v), std::log2(v), kFastLog2MaxError) << "v = " << v;
  }
  // Exact powers of two must be exact (mantissa and residual both zero).
  for (int e = -1022; e <= 1023; ++e) {
    EXPECT_EQ(fast_log2(std::exp2(e)), static_cast<double>(e));
  }
}

TEST(FastLog2, UsableRejectsNonNormalPositive) {
  EXPECT_FALSE(fast_log2_usable(0.0));
  EXPECT_FALSE(fast_log2_usable(-0.0));
  EXPECT_FALSE(fast_log2_usable(-1.5));
  EXPECT_FALSE(fast_log2_usable(std::numeric_limits<double>::denorm_min()));
  EXPECT_FALSE(fast_log2_usable(std::numeric_limits<double>::infinity()));
  EXPECT_FALSE(fast_log2_usable(std::numeric_limits<double>::quiet_NaN()));
  EXPECT_TRUE(fast_log2_usable(std::numeric_limits<double>::min()));
  EXPECT_TRUE(fast_log2_usable(std::numeric_limits<double>::max()));
}

TEST(LogGammaCeilIndexer, MatchesOracleOnRandomValues) {
  std::mt19937_64 rng(2);
  // Latencies in the sketch arrive as ns; sweep far beyond the physical
  // range (1e-3 .. 1e12 ns) on both sides.
  std::uniform_real_distribution<double> exponents(std::log(1e-6), std::log(1e15));
  for (const double accuracy : {0.25, 0.05, 0.01, 0.001, 0.0001}) {
    const double log_gamma = log_gamma_for(accuracy);
    const LogGammaCeilIndexer indexer(log_gamma);
    for (int i = 0; i < 200000; ++i) {
      const double v = std::exp(exponents(rng));
      ASSERT_EQ(indexer.index(v), sketch_oracle(v, log_gamma))
          << "accuracy " << accuracy << " value " << v;
    }
  }
}

TEST(LogGammaCeilIndexer, MatchesOracleOnBinBoundaries) {
  for (const double accuracy : {0.25, 0.01, 0.001}) {
    const double log_gamma = log_gamma_for(accuracy);
    const LogGammaCeilIndexer indexer(log_gamma);
    const int max_bin = static_cast<int>(std::log(1e12) / log_gamma);
    const int step = std::max(1, max_bin / 4000);
    for (int bin = -max_bin; bin <= max_bin; bin += step) {
      // gamma^bin is exactly the boundary between bins `bin` and `bin + 1` —
      // the worst case for any approximate indexer. Probe it and one ulp
      // either side.
      const double boundary = std::exp(static_cast<double>(bin) * log_gamma);
      for (const double v :
           {std::nextafter(boundary, 0.0), boundary,
            std::nextafter(boundary, std::numeric_limits<double>::infinity())}) {
        ASSERT_EQ(indexer.index(v), sketch_oracle(v, log_gamma))
            << "accuracy " << accuracy << " bin " << bin << " value " << v;
      }
    }
  }
}

TEST(LogGammaCeilIndexer, MatchesOracleOnAwkwardInputs) {
  const double log_gamma = log_gamma_for(0.01);
  const LogGammaCeilIndexer indexer(log_gamma);
  for (const double v : {1e-3, 1.0, 2.0, 10.0, std::numeric_limits<double>::min(),
                         std::numeric_limits<double>::denorm_min(),
                         std::numeric_limits<double>::max(), 0.9999999999, 1.0000000001}) {
    EXPECT_EQ(indexer.index(v), sketch_oracle(v, log_gamma)) << "value " << v;
  }
}

TEST(Log10BucketIndexer, MatchesOracleOnRandomValues) {
  std::mt19937_64 rng(3);
  struct Config {
    double lo;
    std::size_t buckets_per_decade;
  };
  for (const auto& [lo, per_decade] :
       {Config{1e-3, 10}, Config{1.0, 5}, Config{100.0, 100}, Config{1e-9, 1}}) {
    const double log_lo = std::log10(lo);
    const double width = 1.0 / static_cast<double>(per_decade);
    const Log10BucketIndexer indexer(log_lo, width);
    std::uniform_real_distribution<double> exponents(log_lo, log_lo + 15.0);
    for (int i = 0; i < 100000; ++i) {
      const double v = std::pow(10.0, exponents(rng));
      if (!(v >= lo)) continue;  // mirror LogHistogram::record's underflow gate
      ASSERT_EQ(indexer.index(v), histogram_oracle(v, log_lo, width))
          << "lo " << lo << " per-decade " << per_decade << " value " << v;
    }
  }
}

TEST(Log10BucketIndexer, MatchesOracleOnBucketBoundaries) {
  const double lo = 1e-3;
  for (const std::size_t per_decade : {1u, 10u, 100u}) {
    const double log_lo = std::log10(lo);
    const double width = 1.0 / static_cast<double>(per_decade);
    const Log10BucketIndexer indexer(log_lo, width);
    for (std::size_t i = 0; i < 12 * per_decade; ++i) {
      const double edge = std::pow(10.0, log_lo + static_cast<double>(i) * width);
      for (const double v :
           {std::nextafter(edge, std::numeric_limits<double>::infinity()), edge,
            std::nextafter(edge, lo)}) {
        if (!(v >= lo)) continue;
        ASSERT_EQ(indexer.index(v), histogram_oracle(v, log_lo, width))
            << "per-decade " << per_decade << " edge " << i << " value " << v;
      }
    }
  }
}

// End-to-end: a sketch and histogram fed the same stream as libm-era code
// would produce identical bins. (The indexer-level oracles above are the
// strong check; this guards the wiring.)
TEST(Log2IndexIntegration, SketchBinsMatchOracleFormula) {
  LatencySketch sketch({.relative_accuracy = 0.02, .max_bins = 0});
  const double log_gamma = log_gamma_for(0.02);
  std::map<std::int32_t, std::uint64_t> expected;
  std::mt19937_64 rng(4);
  std::uniform_real_distribution<double> exponents(std::log(1e-2), std::log(1e9));
  for (int i = 0; i < 50000; ++i) {
    const double v = std::exp(exponents(rng));
    sketch.add(v);
    expected[sketch_oracle(v, log_gamma)] += 1;
  }
  EXPECT_EQ(sketch.bins(), expected);
}

TEST(Log2IndexIntegration, HistogramBucketsMatchOracleFormula) {
  LogHistogram hist(1e-3, 1e9, 10);
  const double log_lo = std::log10(1e-3);
  const double width = 0.1;
  std::vector<std::uint64_t> expected(hist.bucket_count(), 0);
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> exponents(-4.0, 10.0);
  for (int i = 0; i < 50000; ++i) {
    const double v = std::pow(10.0, exponents(rng));
    hist.record(v);
    if (!(v >= 1e-3)) continue;
    const std::size_t idx = histogram_oracle(v, log_lo, width);
    if (idx < expected.size()) expected[idx] += 1;
  }
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(hist.bucket_value(i), expected[i]) << "bucket " << i;
  }
}

}  // namespace
}  // namespace rlir::common
