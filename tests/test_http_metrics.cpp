// HttpMetricsServer: the GET-only /metrics responder, driven entirely over
// in-memory loopback pipes through a fake Listener — no sockets, fully
// deterministic. Covers the happy scrape (status line, headers,
// Content-Length, body), each rejection status (405/404/400/431), pipelined
// half-written requests, connection shedding, and the request counters.
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "transport/byte_stream.h"
#include "transport/http_metrics.h"

namespace rlir::transport {
namespace {

/// Listener over make_loopback pipes: connect() mints a pair and queues the
/// server end for the next accept() — what a socket listener does, minus
/// the kernel.
class FakeListener final : public Listener {
 public:
  [[nodiscard]] std::unique_ptr<ByteStream> accept() override {
    if (pending_->empty()) return nullptr;
    auto stream = std::move(pending_->front());
    pending_->pop_front();
    return stream;
  }

  /// The client end of a fresh connection; the server end awaits accept().
  [[nodiscard]] std::unique_ptr<ByteStream> connect() {
    auto [client_end, server_end] = make_loopback();
    pending_->push_back(std::move(server_end));
    return std::move(client_end);
  }

  /// Shared so the test keeps minting connections after the server takes
  /// ownership of the listener.
  [[nodiscard]] std::shared_ptr<std::deque<std::unique_ptr<ByteStream>>> queue() {
    return pending_;
  }

  explicit FakeListener(std::shared_ptr<std::deque<std::unique_ptr<ByteStream>>> pending =
                            std::make_shared<std::deque<std::unique_ptr<ByteStream>>>())
      : pending_(std::move(pending)) {}

 private:
  std::shared_ptr<std::deque<std::unique_ptr<ByteStream>>> pending_;
};

/// Sends `request` over a fresh connection, polls the server until the
/// response completes, returns the raw response text.
std::string roundtrip(HttpMetricsServer& server,
                      const std::shared_ptr<std::deque<std::unique_ptr<ByteStream>>>& queue,
                      const std::string& request) {
  auto [client_end, server_end] = make_loopback();
  queue->push_back(std::move(server_end));
  std::size_t sent = 0;
  while (sent < request.size()) {
    sent += client_end->write_some(
        reinterpret_cast<const std::uint8_t*>(request.data()) + sent, request.size() - sent);
  }
  std::string response;
  std::uint8_t buf[4096];
  for (int i = 0; i < 1000; ++i) {
    server.poll();
    while (true) {
      const std::size_t n = client_end->read_some(buf, sizeof(buf));
      if (n == 0) break;
      response.append(reinterpret_cast<const char*>(buf), n);
    }
    if (client_end->closed()) break;  // Connection: close ends every exchange
  }
  return response;
}

TEST(HttpMetricsTest, ServesMetricsBody) {
  auto listener = std::make_unique<FakeListener>();
  auto queue = listener->queue();
  int renders = 0;
  HttpMetricsServer server(std::move(listener), [&renders] {
    ++renders;
    return std::string("rlir_up 1\n");
  });

  const auto response =
      roundtrip(server, queue, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(response.rfind("HTTP/1.1 200 OK\r\n", 0), 0u) << response;
  EXPECT_NE(response.find("Content-Type: text/plain"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 10\r\n"), std::string::npos);
  EXPECT_NE(response.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(response.find("\r\n\r\nrlir_up 1\n"), std::string::npos);
  EXPECT_EQ(renders, 1);
  EXPECT_EQ(server.requests_served(), 1u);
  EXPECT_EQ(server.requests_rejected(), 0u);
  EXPECT_EQ(server.open_connections(), 0u) << "finished stream must be reaped";

  // The body re-renders per scrape (a live registry, not a cached page).
  (void)roundtrip(server, queue, "GET /metrics?format=prometheus HTTP/1.0\r\n\r\n");
  EXPECT_EQ(renders, 2) << "query strings are ignored, body re-rendered";
  EXPECT_EQ(server.requests_served(), 2u);
}

TEST(HttpMetricsTest, RejectionStatuses) {
  auto listener = std::make_unique<FakeListener>();
  auto queue = listener->queue();
  HttpMetricsServer server(std::move(listener), [] { return std::string("x\n"); });

  EXPECT_EQ(roundtrip(server, queue, "POST /metrics HTTP/1.1\r\n\r\n")
                .rfind("HTTP/1.1 405 ", 0),
            0u);
  EXPECT_EQ(roundtrip(server, queue, "GET /other HTTP/1.1\r\n\r\n")
                .rfind("HTTP/1.1 404 ", 0),
            0u);
  EXPECT_EQ(roundtrip(server, queue, "garbage\r\n\r\n").rfind("HTTP/1.1 400 ", 0), 0u);
  const std::string huge =
      "GET /metrics HTTP/1.1\r\nX-Pad: " + std::string(10000, 'a') + "\r\n\r\n";
  EXPECT_EQ(roundtrip(server, queue, huge).rfind("HTTP/1.1 431 ", 0), 0u);

  EXPECT_EQ(server.requests_served(), 0u);
  EXPECT_EQ(server.requests_rejected(), 4u);
}

TEST(HttpMetricsTest, SlowRequestCompletesAcrossPolls) {
  auto listener = std::make_unique<FakeListener>();
  auto queue = listener->queue();
  HttpMetricsServer server(std::move(listener), [] { return std::string("ok\n"); });

  auto [client_end, server_end] = make_loopback();
  queue->push_back(std::move(server_end));
  const std::string request = "GET /metrics HTTP/1.1\r\n\r\n";
  // Dribble one byte per poll: the server must buffer a half request
  // without answering or dropping it.
  for (const char c : request) {
    server.poll();
    (void)client_end->write_some(reinterpret_cast<const std::uint8_t*>(&c), 1);
  }
  std::string response;
  std::uint8_t buf[1024];
  for (int i = 0; i < 100 && !client_end->closed(); ++i) {
    server.poll();
    while (true) {
      const std::size_t n = client_end->read_some(buf, sizeof(buf));
      if (n == 0) break;
      response.append(reinterpret_cast<const char*>(buf), n);
    }
  }
  EXPECT_EQ(response.rfind("HTTP/1.1 200 OK\r\n", 0), 0u) << response;
  EXPECT_EQ(server.requests_served(), 1u);
}

TEST(HttpMetricsTest, ShedsConnectionsOverTheCap) {
  auto listener = std::make_unique<FakeListener>();
  auto queue = listener->queue();
  HttpMetricsConfig cfg;
  cfg.max_connections = 2;
  HttpMetricsServer server(std::move(listener), [] { return std::string("x\n"); }, cfg);

  // Three idle connections; the third must be shed (accepted then closed).
  std::vector<std::unique_ptr<ByteStream>> clients;
  for (int i = 0; i < 3; ++i) {
    auto [client_end, server_end] = make_loopback();
    queue->push_back(std::move(server_end));
    clients.push_back(std::move(client_end));
  }
  server.poll();
  EXPECT_EQ(server.open_connections(), 2u);
  EXPECT_TRUE(clients[2]->closed());
  EXPECT_FALSE(clients[0]->closed());
  EXPECT_GE(server.requests_rejected(), 1u);
}

TEST(HttpMetricsTest, NullArgumentsThrow) {
  EXPECT_THROW(HttpMetricsServer(nullptr, [] { return std::string(); }),
               std::invalid_argument);
  EXPECT_THROW(HttpMetricsServer(std::make_unique<FakeListener>(), nullptr),
               std::invalid_argument);
}

TEST(HttpMetricsTest, AddedRoutesServeAlongsideMetrics) {
  auto listener = std::make_unique<FakeListener>();
  auto queue = listener->queue();
  HttpMetricsServer server(std::move(listener), [] { return std::string("up 1\n"); });
  server.add_route("/healthz", [] { return std::string("{\"status\":\"ok\"}\n"); });
  server.add_route("/trace", [] { return std::string("{\"traceEvents\":[]}\n"); });

  const auto health = roundtrip(server, queue, "GET /healthz HTTP/1.1\r\n\r\n");
  EXPECT_EQ(health.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  EXPECT_NE(health.find("Content-Type: application/json\r\n"), std::string::npos);
  EXPECT_NE(health.find("{\"status\":\"ok\"}\n"), std::string::npos);

  // Query strings are stripped for every route, not just /metrics.
  const auto trace = roundtrip(server, queue, "GET /trace?trace_id=7 HTTP/1.1\r\n\r\n");
  EXPECT_EQ(trace.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  EXPECT_NE(trace.find("{\"traceEvents\":[]}\n"), std::string::npos);

  // /metrics keeps its own content type next to the JSON routes.
  const auto metrics = roundtrip(server, queue, "GET /metrics HTTP/1.1\r\n\r\n");
  EXPECT_NE(metrics.find("Content-Type: text/plain"), std::string::npos);
  EXPECT_EQ(server.requests_served(), 3u);
}

TEST(HttpMetricsTest, NewRoutesKeep404And405Behavior) {
  auto listener = std::make_unique<FakeListener>();
  auto queue = listener->queue();
  HttpMetricsServer server(std::move(listener), [] { return std::string("x\n"); });
  server.add_route("/healthz", [] { return std::string("ok\n"); });

  // Near-miss targets are 404, with the original hint body intact.
  const auto miss = roundtrip(server, queue, "GET /healthz/extra HTTP/1.1\r\n\r\n");
  EXPECT_EQ(miss.rfind("HTTP/1.1 404 ", 0), 0u);
  EXPECT_NE(miss.find("try /metrics\n"), std::string::npos);
  EXPECT_EQ(roundtrip(server, queue, "GET /health HTTP/1.1\r\n\r\n").rfind("HTTP/1.1 404 ", 0),
            0u);

  // Non-GET methods are 405 on added routes too.
  const auto post = roundtrip(server, queue, "POST /healthz HTTP/1.1\r\n\r\n");
  EXPECT_EQ(post.rfind("HTTP/1.1 405 ", 0), 0u);
  EXPECT_NE(post.find("Allow: GET\r\n"), std::string::npos);
  EXPECT_EQ(server.requests_rejected(), 3u);
}

TEST(HttpMetricsTest, AddRouteReplacesAndValidates) {
  auto listener = std::make_unique<FakeListener>();
  auto queue = listener->queue();
  HttpMetricsServer server(std::move(listener), [] { return std::string("x\n"); });
  server.add_route("/healthz", [] { return std::string("v1\n"); });
  server.add_route("/healthz", [] { return std::string("v2\n"); });

  const auto response = roundtrip(server, queue, "GET /healthz HTTP/1.1\r\n\r\n");
  EXPECT_NE(response.find("v2\n"), std::string::npos);
  EXPECT_EQ(response.find("v1\n"), std::string::npos);

  EXPECT_THROW(server.add_route("", [] { return std::string(); }), std::invalid_argument);
  EXPECT_THROW(server.add_route("no-slash", [] { return std::string(); }),
               std::invalid_argument);
  EXPECT_THROW(server.add_route("/null", nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace rlir::transport
