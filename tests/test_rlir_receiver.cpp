// Unit tests: rlir/receiver.h — multi-sender stream separation.
#include <gtest/gtest.h>

#include "rlir/receiver.h"
#include "timebase/clock.h"

namespace rlir::rlir {
namespace {

using timebase::TimePoint;

net::Packet reference(std::int64_t arrival_ns, std::int64_t delay_ns, std::uint64_t seq,
                      net::SenderId id) {
  auto ref = net::make_reference_packet(id, TimePoint(arrival_ns - delay_ns),
                                        TimePoint(arrival_ns - delay_ns), seq);
  ref.ts = TimePoint(arrival_ns);
  return ref;
}

net::Packet regular(std::int64_t arrival_ns, net::Ipv4Address src) {
  net::Packet p;
  p.ts = TimePoint(arrival_ns);
  p.injected_at = TimePoint(arrival_ns);
  p.key.src = src;
  p.key.dst = net::Ipv4Address(10, 9, 9, 9);
  p.kind = net::PacketKind::kRegular;
  return p;
}

const net::Ipv4Address kOriginA(10, 0, 0, 1);
const net::Ipv4Address kOriginB(10, 0, 1, 1);

class RlirReceiverTest : public ::testing::Test {
 protected:
  RlirReceiverTest() {
    demux_.add_origin(net::Ipv4Prefix(kOriginA, 24), 1);
    demux_.add_origin(net::Ipv4Prefix(kOriginB, 24), 2);
  }

  timebase::PerfectClock clock_;
  PrefixDemux demux_;
};

TEST_F(RlirReceiverTest, ValidatesConstruction) {
  EXPECT_THROW(RlirReceiver(rli::ReceiverConfig{}, nullptr, &demux_), std::invalid_argument);
  EXPECT_THROW(RlirReceiver(rli::ReceiverConfig{}, &clock_, nullptr), std::invalid_argument);
}

TEST_F(RlirReceiverTest, SeparatesStreamsBySender) {
  RlirReceiver receiver(rli::ReceiverConfig{}, &clock_, &demux_);

  // Interleaved: sender 1's segment has delay 1000, sender 2's has 5000.
  receiver.on_packet(reference(0, 1000, 0, 1), TimePoint(0));
  receiver.on_packet(reference(1, 5000, 1, 2), TimePoint(1));
  receiver.on_packet(regular(100, kOriginA), TimePoint(100));
  receiver.on_packet(regular(200, kOriginB), TimePoint(200));
  receiver.on_packet(regular(300, kOriginA), TimePoint(300));
  receiver.on_packet(reference(1000, 1000, 2, 1), TimePoint(1000));
  receiver.on_packet(reference(1001, 5000, 3, 2), TimePoint(1001));

  EXPECT_EQ(receiver.stream_count(), 2u);
  EXPECT_EQ(receiver.classified_packets(), 3u);
  EXPECT_EQ(receiver.unclassified_packets(), 0u);

  const auto* stream1 = receiver.stream(1);
  const auto* stream2 = receiver.stream(2);
  ASSERT_NE(stream1, nullptr);
  ASSERT_NE(stream2, nullptr);
  EXPECT_EQ(stream1->packets_estimated(), 2u);
  EXPECT_EQ(stream2->packets_estimated(), 1u);
  // Each stream interpolates against its own (flat) anchor delays.
  for (const auto& [key, stats] : stream1->per_flow()) {
    EXPECT_DOUBLE_EQ(stats.mean(), 1000.0);
  }
  for (const auto& [key, stats] : stream2->per_flow()) {
    EXPECT_DOUBLE_EQ(stats.mean(), 5000.0);
  }
}

TEST_F(RlirReceiverTest, StreamEstimateSinkTagsSenderAcrossStreams) {
  RlirReceiver receiver(rli::ReceiverConfig{}, &clock_, &demux_);

  // One sink registered before any stream exists...
  std::vector<std::pair<net::SenderId, double>> early;
  receiver.add_estimate_sink(
      [&](net::SenderId sender, const rli::RliReceiver::PacketEstimate& e) {
        early.emplace_back(sender, e.estimate_ns);
      });

  receiver.on_packet(reference(0, 1000, 0, 1), TimePoint(0));
  receiver.on_packet(reference(1, 5000, 1, 2), TimePoint(1));
  receiver.on_packet(regular(100, kOriginA), TimePoint(100));
  receiver.on_packet(regular(200, kOriginB), TimePoint(200));

  // ...and one registered after the streams were created: both must see
  // every estimate, tagged with the owning stream's sender.
  std::vector<std::pair<net::SenderId, double>> late;
  receiver.add_estimate_sink(
      [&](net::SenderId sender, const rli::RliReceiver::PacketEstimate& e) {
        late.emplace_back(sender, e.estimate_ns);
      });

  receiver.on_packet(reference(1000, 1000, 2, 1), TimePoint(1000));
  receiver.on_packet(reference(1001, 5000, 3, 2), TimePoint(1001));

  ASSERT_EQ(early.size(), 2u);
  EXPECT_EQ(early, late);
  EXPECT_EQ(early[0].first, 1);
  EXPECT_DOUBLE_EQ(early[0].second, 1000.0);
  EXPECT_EQ(early[1].first, 2);
  EXPECT_DOUBLE_EQ(early[1].second, 5000.0);
}

TEST_F(RlirReceiverTest, UnclassifiedPacketsAreCountedNotEstimated) {
  RlirReceiver receiver(rli::ReceiverConfig{}, &clock_, &demux_);
  receiver.on_packet(reference(0, 1000, 0, 1), TimePoint(0));
  receiver.on_packet(regular(100, net::Ipv4Address(192, 168, 0, 1)), TimePoint(100));
  receiver.on_packet(reference(1000, 1000, 1, 1), TimePoint(1000));
  EXPECT_EQ(receiver.unclassified_packets(), 1u);
  EXPECT_EQ(receiver.stream(1)->packets_estimated(), 0u);
}

TEST_F(RlirReceiverTest, CrossAndReferenceKindsNotDemuxed) {
  RlirReceiver receiver(rli::ReceiverConfig{}, &clock_, &demux_);
  net::Packet cross = regular(50, kOriginA);
  cross.kind = net::PacketKind::kCross;
  receiver.on_packet(cross, TimePoint(50));
  EXPECT_EQ(receiver.classified_packets(), 0u);
  EXPECT_EQ(receiver.unclassified_packets(), 0u);
}

TEST_F(RlirReceiverTest, MergedEstimatesUnionStreams) {
  RlirReceiver receiver(rli::ReceiverConfig{}, &clock_, &demux_);
  receiver.on_packet(reference(0, 1000, 0, 1), TimePoint(0));
  receiver.on_packet(reference(1, 2000, 1, 2), TimePoint(1));
  receiver.on_packet(regular(100, kOriginA), TimePoint(100));
  receiver.on_packet(regular(200, kOriginB), TimePoint(200));
  receiver.on_packet(reference(1000, 1000, 2, 1), TimePoint(1000));
  receiver.on_packet(reference(1001, 2000, 3, 2), TimePoint(1001));

  const auto merged = receiver.merged_estimates();
  EXPECT_EQ(merged.size(), 2u);  // one flow per origin
}

TEST_F(RlirReceiverTest, StreamAccessorForUnknownSender) {
  const RlirReceiver receiver(rli::ReceiverConfig{}, &clock_, &demux_);
  EXPECT_EQ(receiver.stream(99), nullptr);
}

// The motivating failure (Section 3.1): without demultiplexing, streams with
// different segment delays contaminate each other's estimates.
TEST_F(RlirReceiverTest, NoDemuxProducesWrongEstimates) {
  SingleSenderDemux no_demux(1);
  RlirReceiver broken(rli::ReceiverConfig{}, &clock_, &no_demux);

  // Sender 1 anchors (delay 1000) bracket regular packets that actually
  // took sender 2's segment (delay 5000).
  broken.on_packet(reference(0, 1000, 0, 1), TimePoint(0));
  broken.on_packet(regular(100, kOriginB), TimePoint(100));
  broken.on_packet(reference(1000, 1000, 1, 1), TimePoint(1000));

  for (const auto& [key, stats] : broken.stream(1)->per_flow()) {
    // Estimated 1000 although the true segment delay was 5000: "totally
    // wrong", as the paper puts it.
    EXPECT_DOUBLE_EQ(stats.mean(), 1000.0);
  }
}

}  // namespace
}  // namespace rlir::rlir
