// SketchHistoryStore: the time-travel store's exactness and boundedness
// contracts.
//
//   * Property (seeded): for ANY window, the store's answer equals a direct
//     merge of the covered epochs' records — bin for bin — no matter which
//     tier (raw log, mid, coarse) the epochs landed in. The reference model
//     keeps every record in a plain per-epoch vector and merges on demand.
//   * Boundedness: >= 1000 epochs of ingest stay under max_bytes, with the
//     rlir_history_* gauges agreeing with the accessors.
//   * Edge cases: empty store, idle epochs, single-epoch windows, reversed
//     windows, evicted/future windows, late records, backward growth,
//     accuracy mismatch.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "collect/estimate_record.h"
#include "collect/history.h"
#include "common/rng.h"
#include "obs/metrics.h"

namespace rlir::collect {
namespace {

net::FiveTuple flow_key(std::uint32_t i) {
  net::FiveTuple key;
  key.src = net::Ipv4Address(10, 1, static_cast<std::uint8_t>(i >> 8),
                             static_cast<std::uint8_t>(i));
  key.dst = net::Ipv4Address(192, 168, 0, 1);
  key.src_port = static_cast<std::uint16_t>(4000 + i);
  key.dst_port = 443;
  key.proto = static_cast<std::uint8_t>(net::IpProto::kUdp);
  return key;
}

EstimateRecord make_record(std::uint32_t epoch, std::uint32_t flow, LinkId link,
                           common::Xoshiro256& rng) {
  EstimateRecord r;
  r.key = flow_key(flow);
  r.link = link;
  r.epoch = epoch;
  r.sender = 1;
  const int samples = 1 + static_cast<int>(rng.uniform(0.0, 6.0));
  for (int s = 0; s < samples; ++s) r.sketch.add(30e3 * rng.uniform(0.5, 4.0));
  return r;
}

/// The reference model: every record, kept verbatim per epoch.
using EpochRecords = std::map<std::uint32_t, std::vector<EstimateRecord>>;

/// Direct merge over [first, last] of records matching `pred` — the ground
/// truth any window query is compared against.
template <typename Pred>
common::LatencySketch direct_merge(const EpochRecords& model, std::uint32_t first,
                                   std::uint32_t last, Pred&& pred) {
  common::LatencySketch out{common::LatencySketchConfig{}};
  for (auto it = model.lower_bound(first); it != model.end() && it->first <= last; ++it) {
    for (const auto& r : it->second) {
      if (pred(r)) out.merge(r.sketch);
    }
  }
  return out;
}

std::uint64_t direct_records(const EpochRecords& model, std::uint32_t first,
                             std::uint32_t last) {
  std::uint64_t n = 0;
  for (auto it = model.lower_bound(first); it != model.end() && it->first <= last; ++it) {
    n += it->second.size();
  }
  return n;
}

TEST(HistoryStoreTest, EmptyStoreAnswersNothing) {
  SketchHistoryStore store;
  WindowCoverage cov;
  EXPECT_FALSE(store.window_flow(0, 10, flow_key(0), &cov).has_value());
  EXPECT_FALSE(cov.covered);
  EXPECT_FALSE(cov.complete);
  EXPECT_TRUE(store.window_fleet(0, 10).empty());
  EXPECT_TRUE(store.window_flows(0, 10).empty());
  EXPECT_TRUE(store.window_links(0, 10).empty());
  EXPECT_EQ(store.epochs_retained(), 0u);
  EXPECT_FALSE(store.first_retained_epoch().has_value());
  EXPECT_FALSE(store.last_epoch().has_value());
}

TEST(HistoryStoreTest, BadConfigsThrow) {
  const auto expect_throws = [](HistoryConfig cfg) {
    EXPECT_THROW(SketchHistoryStore{cfg}, std::invalid_argument);
  };
  HistoryConfig cfg;
  cfg.raw_epochs = 0;
  expect_throws(cfg);
  cfg = {};
  cfg.mid_window = 0;
  expect_throws(cfg);
  cfg = {};
  cfg.coarse_window = 12;  // not a multiple of mid_window = 8
  expect_throws(cfg);
  cfg = {};
  cfg.mid_segments = 0;
  expect_throws(cfg);
  cfg = {};
  cfg.max_epoch_jump = 0;
  expect_throws(cfg);
}

TEST(HistoryStoreTest, AccuracyMismatchThrows) {
  SketchHistoryStore store;
  EstimateRecord r;
  r.key = flow_key(0);
  common::LatencySketchConfig other;
  other.relative_accuracy = 0.05;
  r.sketch = common::LatencySketch(other);
  EXPECT_THROW(store.ingest(r), std::invalid_argument);
}

// The tentpole property: window query == direct merge of the covered
// epochs' records, across all three tiers. retained_max_bins stays 0 (the
// producer budget), so even compacted answers must be bin-for-bin exact.
TEST(HistoryStoreTest, WindowEqualsDirectMergeAcrossTiers) {
  HistoryConfig cfg;
  cfg.raw_epochs = 4;
  cfg.mid_window = 2;
  cfg.mid_segments = 3;
  cfg.coarse_window = 4;
  cfg.coarse_segments = 4;
  SketchHistoryStore store(cfg);

  constexpr std::uint32_t kEpochs = 40;
  constexpr std::uint32_t kFlows = 12;
  constexpr LinkId kLinks = 3;
  common::Xoshiro256 rng(20110328);  // seeded: identical records every run

  EpochRecords model;
  for (std::uint32_t epoch = 0; epoch < kEpochs; ++epoch) {
    if (epoch % 7 == 3) {
      store.note_epoch(epoch);  // idle epoch: sealed, no records
      model[epoch];
      continue;
    }
    const int count = 2 + static_cast<int>(rng.uniform(0.0, 8.0));
    for (int i = 0; i < count; ++i) {
      const auto flow = static_cast<std::uint32_t>(rng.uniform(0.0, kFlows));
      const auto link = static_cast<LinkId>(rng.uniform(0.0, kLinks));
      auto r = make_record(epoch, flow, link, rng);
      model[epoch].push_back(r);
      store.ingest(r);
    }
  }
  ASSERT_EQ(store.records_ingested(), direct_records(model, 0, kEpochs));
  ASSERT_GT(store.compactions(), 0u) << "workload never exercised compaction";

  // Windows crossing every tier boundary, plus a seeded random sweep.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> windows = {
      {kEpochs - 1, kEpochs - 1},  // newest raw epoch alone
      {kEpochs - 4, kEpochs - 1},  // fully raw
      {kEpochs - 8, kEpochs - 2},  // raw + mid straddle
      {0, kEpochs - 1},            // everything
      {0, 0},                      // oldest (coarse) alone
      {2, 17},                     // coarse + mid straddle
      {3, 3},                      // idle epoch inside a compacted segment
  };
  for (int i = 0; i < 40; ++i) {
    auto a = static_cast<std::uint32_t>(rng.uniform(0.0, kEpochs));
    auto b = static_cast<std::uint32_t>(rng.uniform(0.0, kEpochs));
    windows.emplace_back(a, b);  // reversed windows included on purpose
  }

  const std::uint32_t oldest = *store.first_retained_epoch();
  const std::uint32_t newest = *store.last_epoch();
  ASSERT_GT(oldest, 0u) << "workload never evicted — tiers too large for the sweep";
  for (const auto& [w_first, w_last] : windows) {
    const std::uint32_t lo = std::min(w_first, w_last);
    const std::uint32_t hi = std::max(w_first, w_last);

    WindowCoverage cov;
    const auto fleet = store.window_fleet(w_first, w_last, &cov);
    ASSERT_EQ(cov.covered, hi >= oldest && lo <= newest) << "[" << lo << ", " << hi << "]";
    if (!cov.covered) {
      EXPECT_TRUE(fleet.empty());
      continue;
    }
    // Coverage snaps OUTWARD at compacted edges: it must contain the whole
    // retained part of the request, never lose any of it.
    EXPECT_LE(cov.covered_first, std::max(lo, oldest));
    EXPECT_GE(cov.covered_last, std::min(hi, newest));
    EXPECT_EQ(cov.records, direct_records(model, cov.covered_first, cov.covered_last));
    EXPECT_EQ(cov.complete, lo >= oldest && hi <= newest);

    // Fleet union == direct merge of every record in the covered range.
    const auto want_fleet = direct_merge(model, cov.covered_first, cov.covered_last,
                                         [](const EstimateRecord&) { return true; });
    EXPECT_EQ(fleet.bins(), want_fleet.bins()) << "[" << lo << ", " << hi << "]";
    EXPECT_EQ(fleet.count(), want_fleet.count());

    // Per-flow and per-link answers, same contract.
    for (std::uint32_t flow = 0; flow < kFlows; ++flow) {
      const auto key = flow_key(flow);
      const auto got = store.window_flow(w_first, w_last, key);
      const auto want = direct_merge(model, cov.covered_first, cov.covered_last,
                                     [&](const EstimateRecord& r) { return r.key == key; });
      ASSERT_EQ(got.has_value(), !want.empty()) << "flow " << flow;
      if (got.has_value()) {
        EXPECT_EQ(got->bins(), want.bins()) << "flow " << flow;
        EXPECT_EQ(got->count(), want.count()) << "flow " << flow;
        const auto q = store.window_flow_quantile(w_first, w_last, key, 0.99);
        ASSERT_TRUE(q.has_value());
        EXPECT_DOUBLE_EQ(*q, want.quantile(0.99));
      }
    }
    for (LinkId link = 0; link < kLinks; ++link) {
      const auto got = store.window_link(w_first, w_last, link);
      const auto want = direct_merge(model, cov.covered_first, cov.covered_last,
                                     [&](const EstimateRecord& r) { return r.link == link; });
      ASSERT_EQ(got.has_value(), !want.empty()) << "link " << link;
      if (got.has_value()) {
        EXPECT_EQ(got->bins(), want.bins()) << "link " << link;
      }
    }
  }

  // Enumerations match the model over a tier-straddling window.
  WindowCoverage cov;
  (void)store.window_fleet(2, kEpochs - 2, &cov);
  std::vector<net::FiveTuple> want_flows;
  std::vector<LinkId> want_links;
  for (auto it = model.lower_bound(cov.covered_first);
       it != model.end() && it->first <= cov.covered_last; ++it) {
    for (const auto& r : it->second) {
      want_flows.push_back(r.key);
      want_links.push_back(r.link);
    }
  }
  std::sort(want_flows.begin(), want_flows.end());
  want_flows.erase(std::unique(want_flows.begin(), want_flows.end()), want_flows.end());
  std::sort(want_links.begin(), want_links.end());
  want_links.erase(std::unique(want_links.begin(), want_links.end()), want_links.end());
  EXPECT_EQ(store.window_flows(2, kEpochs - 2), want_flows);
  const auto got_links = store.window_links(2, kEpochs - 2);
  ASSERT_EQ(got_links.size(), want_links.size());
  for (std::size_t i = 0; i < want_links.size(); ++i) {
    EXPECT_EQ(got_links[i].first, want_links[i]);
  }
}

TEST(HistoryStoreTest, EvictedAndFutureWindowsAreUncovered) {
  HistoryConfig cfg;
  cfg.raw_epochs = 2;
  cfg.mid_window = 2;
  cfg.mid_segments = 1;
  cfg.coarse_window = 2;
  cfg.coarse_segments = 1;
  SketchHistoryStore store(cfg);
  common::Xoshiro256 rng(7);
  for (std::uint32_t epoch = 0; epoch < 30; ++epoch) {
    store.ingest(make_record(epoch, 0, 0, rng));
  }
  ASSERT_GT(store.evictions(), 0u);
  const auto oldest = *store.first_retained_epoch();
  ASSERT_GT(oldest, 0u);

  WindowCoverage cov;
  EXPECT_FALSE(store.window_flow(0, oldest - 1, flow_key(0), &cov).has_value());
  EXPECT_FALSE(cov.covered);
  EXPECT_FALSE(store.window_flow(100, 200, flow_key(0), &cov).has_value());
  EXPECT_FALSE(cov.covered);

  // A request overlapping the retained range answers it, honestly partial.
  const auto got = store.window_flow(0, 29, flow_key(0), &cov);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(cov.covered);
  EXPECT_FALSE(cov.complete);
  EXPECT_GE(cov.covered_first, oldest);
}

TEST(HistoryStoreTest, LateRecordsMergeIntoCompactedSegments) {
  HistoryConfig cfg;
  cfg.raw_epochs = 2;
  cfg.mid_window = 4;
  cfg.mid_segments = 4;
  cfg.coarse_window = 8;
  cfg.coarse_segments = 4;
  SketchHistoryStore store(cfg);
  common::Xoshiro256 rng(11);
  for (std::uint32_t epoch = 0; epoch < 12; ++epoch) {
    store.ingest(make_record(epoch, 0, 0, rng));
  }
  ASSERT_GT(store.compactions(), 0u);

  // Epoch 1 has been folded; a straggler for it merges into its segment.
  auto straggler = make_record(1, 5, 2, rng);
  const auto before = store.window_flow(1, 1, flow_key(5));
  EXPECT_FALSE(before.has_value());
  store.ingest(straggler);
  EXPECT_EQ(store.late_records(), 1u);
  const auto after = store.window_flow(1, 1, flow_key(5));
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->bins(), straggler.sketch.bins());

  // Older than everything retained after an eviction -> dropped.
  SketchHistoryStore tiny{[] {
    HistoryConfig c;
    c.raw_epochs = 1;
    c.mid_segments = 1;
    c.mid_window = 1;
    c.coarse_window = 1;
    c.coarse_segments = 1;
    return c;
  }()};
  for (std::uint32_t epoch = 0; epoch < 8; ++epoch) {
    tiny.ingest(make_record(epoch, 0, 0, rng));
  }
  ASSERT_GT(tiny.evictions(), 0u);
  tiny.ingest(make_record(0, 0, 0, rng));
  EXPECT_EQ(tiny.dropped_records(), 1u);
}

TEST(HistoryStoreTest, RawWindowGrowsBackwardBeforeAnyDiscard) {
  HistoryConfig cfg;
  cfg.raw_epochs = 16;
  SketchHistoryStore store(cfg);
  common::Xoshiro256 rng(13);

  // First record arrives mid-stream (epoch 5) — a flow-hash-sprayed agent's
  // normal fate — then older epochs trickle in. All must stay raw.
  for (const std::uint32_t epoch : {5u, 3u, 4u, 0u, 1u, 2u}) {
    store.ingest(make_record(epoch, epoch, 0, rng));
  }
  EXPECT_EQ(store.dropped_records(), 0u);
  EXPECT_EQ(store.late_records(), 0u);
  EXPECT_EQ(*store.first_retained_epoch(), 0u);

  WindowCoverage cov;
  (void)store.window_fleet(0, 5, &cov);
  EXPECT_TRUE(cov.complete);
  EXPECT_EQ(cov.records, 6u);
  for (std::uint32_t epoch = 0; epoch <= 5; ++epoch) {
    EXPECT_TRUE(store.window_flow(epoch, epoch, flow_key(epoch)).has_value())
        << "epoch " << epoch;
  }
}

TEST(HistoryStoreTest, MemoryStaysBoundedAcrossThousandEpochs) {
  obs::MetricsRegistry registry;
  HistoryConfig cfg;
  cfg.raw_epochs = 8;
  cfg.mid_window = 4;
  cfg.mid_segments = 8;
  cfg.coarse_window = 16;
  cfg.coarse_segments = 8;
  cfg.retained_max_bins = 64;  // bin-collapsing: the second bounding mechanism
  cfg.max_bytes = 1u << 20;
  cfg.instruments.registry = &registry;
  SketchHistoryStore store(cfg);

  common::Xoshiro256 rng(17);
  constexpr std::uint32_t kEpochs = 1200;
  std::uint64_t ingested = 0;
  for (std::uint32_t epoch = 0; epoch < kEpochs; ++epoch) {
    const int count = 8 + static_cast<int>(rng.uniform(0.0, 8.0));
    for (int i = 0; i < count; ++i) {
      const auto flow = static_cast<std::uint32_t>(rng.uniform(0.0, 64.0));
      store.ingest(make_record(epoch, flow, static_cast<LinkId>(flow % 4), rng));
      ++ingested;
    }
    if (epoch % 100 == 0) {
      EXPECT_LE(store.approx_bytes(), cfg.max_bytes) << "epoch " << epoch;
    }
  }
  EXPECT_LE(store.approx_bytes(), cfg.max_bytes);
  EXPECT_EQ(store.records_ingested(), ingested);
  EXPECT_GT(store.compactions(), 0u);
  EXPECT_GT(store.epochs_retained(), 0u);
  EXPECT_EQ(*store.last_epoch(), kEpochs - 1);
  // Retention is a contiguous recent range, and old epochs really left.
  EXPECT_GT(*store.first_retained_epoch(), 0u);

  // The watchdog gauges agree with the accessors.
  const auto snap = registry.snapshot();
  std::int64_t bytes_gauge = -1;
  std::int64_t epochs_gauge = -1;
  std::uint64_t records_counter = 0;
  for (const auto& sample : snap.samples) {
    if (sample.name == "rlir_history_bytes") bytes_gauge = sample.gauge;
    if (sample.name == "rlir_history_epochs") epochs_gauge = sample.gauge;
    if (sample.name == "rlir_history_records_total") records_counter = sample.counter;
  }
  EXPECT_EQ(bytes_gauge, static_cast<std::int64_t>(store.approx_bytes()));
  EXPECT_EQ(epochs_gauge, static_cast<std::int64_t>(store.epochs_retained()));
  EXPECT_EQ(records_counter, ingested);
}

// Concurrency smoke for the TSan pass: writers tee while readers window.
// Correctness of the answers is the property test's job; this one's job is
// to put the lock under real contention.
TEST(HistoryStoreTest, ConcurrentIngestAndQuery) {
  HistoryConfig cfg;
  cfg.raw_epochs = 4;
  cfg.mid_window = 2;
  cfg.mid_segments = 2;
  cfg.coarse_window = 4;
  cfg.coarse_segments = 2;
  SketchHistoryStore store(cfg);

  constexpr int kWriters = 3;
  constexpr std::uint32_t kPerWriter = 2000;
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&store, w] {
      common::Xoshiro256 rng(100 + w);
      for (std::uint32_t i = 0; i < kPerWriter; ++i) {
        store.ingest(make_record(i / 50, i % 8, static_cast<LinkId>(w), rng));
      }
    });
  }
  threads.emplace_back([&store] {
    for (int i = 0; i < 500; ++i) {
      (void)store.window_fleet(0, 60);
      (void)store.window_flow(0, 60, flow_key(1));
      (void)store.approx_bytes();
      (void)store.epochs_retained();
    }
  });
  for (auto& t : threads) t.join();
  EXPECT_EQ(store.records_ingested() + store.dropped_records(),
            static_cast<std::uint64_t>(kWriters) * kPerWriter);
}

}  // namespace
}  // namespace rlir::collect
