// Time-travel acceptance bar: the SAME FatTreeSim workload, history kept
// two ways —
//
//   baseline:     every epoch batch ingested into ONE SketchHistoryStore
//   partitioned:  flow-hash spray across 4 CollectorAgents, each with its
//                 own store; QueryCoordinator merges kWindow* replies
//
// — must answer every window query bin for bin identically. Partitioning
// changes WHERE history is retained, never WHAT the fleet remembers. Proven
// over loopback pipes (deterministic, every flow probed) and real Unix
// sockets (agents on threads, kernel in the path). raw_epochs exceeds the
// workload's epoch count so retention is exact; completeness is NOT
// asserted for the fleet — a sprayed agent legitimately first sees an epoch
// later than the baseline, and the coordinator labels that honestly.
//
// Also pins the kWindow* wire codec: query/reply round-trips and the
// reject-don't-guess validation rules documented in docs/WIRE.md.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <system_error>
#include <thread>
#include <utility>
#include <vector>

#include "collect/history.h"
#include "fleet_workload.h"
#include "transport/agent.h"
#include "transport/coordinator.h"
#include "transport/messages.h"
#include "transport/partitioned_client.h"
#include "transport/socket.h"

namespace rlir {
namespace {

constexpr std::size_t kAgents = 4;

collect::HistoryConfig history_config() {
  collect::HistoryConfig cfg;
  cfg.raw_epochs = 256;  // > workload epochs: fully raw, retention exact
  return cfg;
}

transport::CollectorAgentConfig agent_config() {
  transport::CollectorAgentConfig cfg;
  cfg.collector.shard_count = testutil::kWorkloadShards;
  cfg.enable_history = true;
  cfg.history = history_config();
  return cfg;
}

/// The ground truth: one store fed every record of the workload.
struct BaselineHistory {
  collect::SketchHistoryStore store{history_config()};
  collect::ShardedCollector collector;

  BaselineHistory()
      : collector([] {
          collect::CollectorConfig cfg;
          cfg.shard_count = testutil::kWorkloadShards;
          return cfg;
        }()) {
    collector.set_history(&store);
  }

  collect::EpochScheduler::BatchSink make_sink() {
    return [this](std::uint32_t epoch, const std::vector<collect::EstimateRecord>& batch) {
      // Empty flushes are skipped: a record-less sealed epoch would extend
      // the baseline's retained range past anything the sprayed agents ever
      // hear about (records are the only thing that crosses the wire).
      if (batch.empty()) return;
      for (const auto& r : batch) collector.ingest(r);
      store.note_epoch(epoch);
    };
  }
};

/// Coordinator window answers vs the baseline store, over a sweep of
/// windows: full span, single epochs, and straddles. `flow_probe_limit`
/// bounds the per-flow sweep (each probe is a full fan-out).
void expect_windows_match(transport::QueryCoordinator& coord,
                          BaselineHistory& baseline,
                          std::size_t flow_probe_limit) {
  const auto first = baseline.store.first_retained_epoch();
  const auto last = baseline.store.last_epoch();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(last.has_value());
  ASSERT_GT(*last, *first + 2) << "workload produced too few epochs to straddle";

  const std::uint32_t mid = *first + (*last - *first) / 2;
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> windows = {
      {*first, *last},          // everything
      {*first, *first},         // oldest epoch alone
      {*last, *last},           // newest epoch alone
      {*first, mid},            // first half
      {mid, *last},             // second half
      {*first + 1, *last - 1},  // interior straddle
  };

  for (const auto& [w_first, w_last] : windows) {
    collect::WindowCoverage want_cov;
    const auto want_fleet = baseline.store.window_fleet(w_first, w_last, &want_cov);
    ASSERT_TRUE(want_cov.covered);

    // Fleet union: bin for bin, and the coverage roll-up agrees on bounds
    // and total records (each record is retained by exactly one agent).
    const auto got = coord.window_fleet(w_first, w_last);
    ASSERT_TRUE(got.window.covered) << "[" << w_first << ", " << w_last << "]";
    ASSERT_TRUE(got.sketch.has_value());
    EXPECT_EQ(got.sketch->bins(), want_fleet.bins()) << "[" << w_first << ", " << w_last << "]";
    EXPECT_EQ(got.sketch->count(), want_fleet.count());
    EXPECT_EQ(got.window.first, want_cov.covered_first);
    EXPECT_EQ(got.window.last, want_cov.covered_last);
    EXPECT_EQ(got.window.records, want_cov.records);

    // Every vantage's windowed distribution.
    for (const auto& [link, want_sketch] : baseline.store.window_links(w_first, w_last)) {
      const auto got_link = coord.window_link(link, w_first, w_last);
      ASSERT_TRUE(got_link.sketch.has_value()) << "link " << link;
      EXPECT_EQ(got_link.sketch->bins(), want_sketch.bins()) << "link " << link;
      EXPECT_EQ(got_link.sketch->count(), want_sketch.count()) << "link " << link;
    }

    // Per-flow windowed sketches and p99 — THE acceptance criterion: the
    // partitioned fleet's windowed p99 is bin-for-bin the single store's.
    const auto flows = baseline.store.window_flows(w_first, w_last);
    ASSERT_FALSE(flows.empty());
    std::size_t probed = 0;
    for (const auto& key : flows) {
      if (probed++ == flow_probe_limit) break;
      const auto want_sketch = baseline.store.window_flow(w_first, w_last, key);
      ASSERT_TRUE(want_sketch.has_value()) << key.to_string();
      const auto got_sketch = coord.window_flow_sketch(key, w_first, w_last);
      ASSERT_TRUE(got_sketch.sketch.has_value()) << key.to_string();
      EXPECT_EQ(got_sketch.sketch->bins(), want_sketch->bins()) << key.to_string();

      const auto want_p99 = baseline.store.window_flow_quantile(w_first, w_last, key, 0.99);
      const auto got_p99 = coord.window_flow_quantile(key, 0.99, w_first, w_last);
      ASSERT_TRUE(got_p99.has_value()) << key.to_string();
      EXPECT_DOUBLE_EQ(*got_p99, *want_p99) << key.to_string();
    }
  }

  // A window beyond retained time is honestly uncovered fleet-wide.
  const auto future = coord.window_fleet(*last + 1000, *last + 2000);
  EXPECT_FALSE(future.window.covered);
  EXPECT_FALSE(future.sketch.has_value());
}

TEST(HistoryWindowE2E, PartitionedLoopbackFleetAnswersWindowsLikeOneStore) {
  BaselineHistory baseline;
  testutil::run_fleet_workload({baseline.make_sink()}, [] {});
  ASSERT_GT(baseline.store.records_ingested(), 0u);

  std::vector<std::unique_ptr<transport::CollectorAgent>> agents;
  for (std::size_t i = 0; i < kAgents; ++i) {
    agents.push_back(std::make_unique<transport::CollectorAgent>(agent_config()));
  }
  const auto poll_all = [&agents] {
    for (auto& agent : agents) agent->poll();
  };
  const auto factory = [&agents](std::size_t i) {
    return [&agents, i]() {
      auto [client_end, agent_end] = transport::make_loopback();
      agents[i]->add_connection(std::move(agent_end));
      return std::move(client_end);
    };
  };

  transport::PartitionedClient pc;
  for (std::size_t i = 0; i < kAgents; ++i) pc.add_endpoint(factory(i));
  testutil::run_fleet_workload({pc.make_sink()}, [&] {
    pc.pump();
    poll_all();
  });
  for (int i = 0; i < 200 && !pc.drain(8); ++i) poll_all();
  poll_all();
  ASSERT_EQ(pc.records_shed(), 0u);

  // Conservation: the fleet's stores retain exactly the baseline's records.
  std::uint64_t retained = 0;
  for (auto& agent : agents) {
    ASSERT_NE(agent->history(), nullptr);
    EXPECT_EQ(agent->history()->dropped_records(), 0u);
    retained += agent->history()->records_ingested();
  }
  EXPECT_EQ(retained, baseline.store.records_ingested());

  transport::QueryCoordinator coord;
  for (std::size_t i = 0; i < kAgents; ++i) coord.add_agent(factory(i));
  coord.set_drive(poll_all);
  ASSERT_EQ(coord.connected_count(), kAgents);
  expect_windows_match(coord, baseline, baseline.store.window_flows(0, 1u << 30).size());
}

TEST(HistoryWindowE2E, PartitionedUnixSocketFleetAnswersWindowsLikeOneStore) {
  std::vector<std::unique_ptr<transport::SocketListener>> listeners;
  std::vector<transport::SocketAddress> addresses;
  for (std::size_t i = 0; i < kAgents; ++i) {
    const std::string path = ::testing::TempDir() + "rlir_hw_" +
                             std::to_string(::getpid()) + "_" + std::to_string(i) + ".sock";
    try {
      listeners.push_back(std::make_unique<transport::SocketListener>(
          transport::SocketAddress::unix_path(path)));
    } catch (const std::system_error&) {
      GTEST_SKIP() << "sandbox forbids unix sockets";
    }
    addresses.push_back(listeners.back()->address());
  }

  BaselineHistory baseline;
  testutil::run_fleet_workload({baseline.make_sink()}, [] {});

  std::vector<std::unique_ptr<transport::CollectorAgent>> agents;
  for (std::size_t i = 0; i < kAgents; ++i) {
    agents.push_back(std::make_unique<transport::CollectorAgent>(agent_config()));
    agents[i]->set_listener(std::move(listeners[i]));
  }
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kAgents; ++i) {
    threads.emplace_back(
        [&agents, &stop, i] { agents[i]->run(stop, timebase::Duration::microseconds(100)); });
  }

  {
    transport::PartitionedClient pc;
    for (std::size_t i = 0; i < kAgents; ++i) {
      pc.add_endpoint([address = addresses[i]]() { return transport::connect_to(address); });
    }
    testutil::run_fleet_workload({pc.make_sink()}, [&pc] { pc.pump(); });
    ASSERT_TRUE(pc.drain(100000)) << "sockets never drained";
    ASSERT_EQ(pc.records_shed(), 0u);
  }

  {
    transport::QueryCoordinator coord;
    for (std::size_t i = 0; i < kAgents; ++i) {
      coord.add_agent([address = addresses[i]]() { return transport::connect_to(address); });
    }
    ASSERT_EQ(coord.connected_count(), kAgents);
    expect_windows_match(coord, baseline, 10);  // loopback run swept all flows
  }

  stop.store(true);
  for (auto& thread : threads) thread.join();
}

// --- kWindow* wire codec ----------------------------------------------------

TEST(HistoryWindowE2E, WindowQueryCodecRoundTrips) {
  transport::Query q;
  q.kind = transport::QueryKind::kWindowFlowQuantile;
  q.q = 0.95;
  q.key.src = net::Ipv4Address(10, 3, 0, 1);
  q.key.dst = net::Ipv4Address(192, 168, 1, 1);
  q.key.src_port = 6001;
  q.key.dst_port = 443;
  q.key.proto = static_cast<std::uint8_t>(net::IpProto::kTcp);
  q.epoch_first = 3;
  q.epoch_last = 1u << 20;
  const auto bytes = transport::encode_query(q);
  const auto back = transport::decode_query(bytes.data(), bytes.size());
  EXPECT_EQ(back.kind, q.kind);
  EXPECT_EQ(back.q, q.q);
  EXPECT_EQ(back.key, q.key);
  EXPECT_EQ(back.epoch_first, q.epoch_first);
  EXPECT_EQ(back.epoch_last, q.epoch_last);

  // Reversed windows are rejected at decode, not guessed at.
  transport::Query bad = q;
  bad.epoch_first = 10;
  bad.epoch_last = 3;
  const auto bad_bytes = transport::encode_query(bad);
  EXPECT_THROW((void)transport::decode_query(bad_bytes.data(), bad_bytes.size()),
               std::runtime_error);
}

TEST(HistoryWindowE2E, WindowReplyCodecRoundTrips) {
  transport::QueryReply reply;
  reply.kind = transport::QueryKind::kWindowLink;
  reply.window.covered = true;
  reply.window.complete = false;
  reply.window.first = 7;
  reply.window.last = 21;
  reply.window.records = 123456;
  common::LatencySketch sketch{common::LatencySketchConfig{}};
  for (int i = 1; i <= 100; ++i) sketch.add(1e3 * i);
  reply.window_sketch = sketch;

  const auto bytes = transport::encode_reply(reply);
  const auto back = transport::decode_reply(bytes.data(), bytes.size());
  EXPECT_EQ(back.kind, reply.kind);
  EXPECT_TRUE(back.window.covered);
  EXPECT_FALSE(back.window.complete);
  EXPECT_EQ(back.window.first, 7u);
  EXPECT_EQ(back.window.last, 21u);
  EXPECT_EQ(back.window.records, 123456u);
  ASSERT_TRUE(back.window_sketch.has_value());
  EXPECT_EQ(back.window_sketch->bins(), sketch.bins());
  EXPECT_EQ(back.window_sketch->count(), sketch.count());

  // Uncovered reply: no sketch payload rides the wire.
  transport::QueryReply empty;
  empty.kind = transport::QueryKind::kWindowFleet;
  const auto empty_bytes = transport::encode_reply(empty);
  const auto empty_back = transport::decode_reply(empty_bytes.data(), empty_bytes.size());
  EXPECT_FALSE(empty_back.window.covered);
  EXPECT_FALSE(empty_back.window_sketch.has_value());
}

}  // namespace
}  // namespace rlir
