// obs::to_chrome_trace: golden-output tests for the Chrome trace_event JSON
// export. The format is a wire contract with chrome://tracing / Perfetto —
// "X" complete events with microsecond ts/dur (ns kept in the fraction),
// pid = process index with process_name metadata, hex span ids in args —
// so the expected documents are spelled out byte for byte.
#include "obs/span.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace rlir::obs {
namespace {

Span make_span(std::uint64_t trace_id, std::uint64_t span_id, std::uint64_t parent_id,
               SpanKind kind, std::int64_t start_ns, std::int64_t end_ns,
               std::string label) {
  Span span;
  span.trace_id = trace_id;
  span.span_id = span_id;
  span.parent_id = parent_id;
  span.kind = kind;
  span.start_ns = start_ns;
  span.end_ns = end_ns;
  span.label = std::move(label);
  return span;
}

TEST(ChromeTraceTest, EmptySingleProcessDocument) {
  EXPECT_EQ(to_chrome_trace({}, "rlir"),
            "{\"traceEvents\":[\n"
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":1,"
            "\"args\":{\"name\":\"rlir\"}}"
            "\n],\"displayTimeUnit\":\"ms\"}\n");
}

TEST(ChromeTraceTest, MultiProcessGolden) {
  std::vector<std::pair<std::string, std::vector<Span>>> processes;
  processes.emplace_back(
      "coordinator",
      std::vector<Span>{make_span(0xabc, 0x1, 0, SpanKind::kCoordMerge, 1000, 5000,
                                  "fleet")});
  processes.emplace_back(
      "agent0",
      std::vector<Span>{make_span(0xabc, 0x2, 0x1, SpanKind::kAgentAnswer, 2000, 2500,
                                  "say \"hi\"\\")});

  const std::string expected =
      "{\"traceEvents\":[\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":1,"
      "\"args\":{\"name\":\"coordinator\"}},\n"
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
      "\"args\":{\"name\":\"agent0\"}},\n"
      "{\"name\":\"coord_merge\",\"cat\":\"merge\",\"ph\":\"X\","
      "\"ts\":1.000,\"dur\":4.000,\"pid\":0,\"tid\":1,"
      "\"args\":{\"trace_id\":\"abc\",\"span_id\":\"1\",\"parent_id\":\"0\","
      "\"label\":\"fleet\"}},\n"
      "{\"name\":\"agent_answer\",\"cat\":\"answer\",\"ph\":\"X\","
      "\"ts\":2.000,\"dur\":0.500,\"pid\":1,\"tid\":1,"
      "\"args\":{\"trace_id\":\"abc\",\"span_id\":\"2\",\"parent_id\":\"1\","
      "\"label\":\"say \\\"hi\\\"\\\\\"}}"
      "\n],\"displayTimeUnit\":\"ms\"}\n";
  EXPECT_EQ(to_chrome_trace(processes), expected);
}

TEST(ChromeTraceTest, NegativeDurationClampsToZero) {
  // A clock step between start and end must not produce a negative dur —
  // Chrome renders those as garbage.
  const auto doc = to_chrome_trace(
      {make_span(0x5, 0x6, 0, SpanKind::kClientPump, 9000, 8000, "")}, "p");
  EXPECT_NE(doc.find("\"dur\":0.000"), std::string::npos);
  EXPECT_EQ(doc.find("-"), std::string::npos);
}

TEST(ChromeTraceTest, ControlCharactersEscaped) {
  const auto doc = to_chrome_trace(
      {make_span(0x1, 0x2, 0, SpanKind::kEpochSeal, 0, 1, "a\nb\tc\x01")}, "p");
  EXPECT_NE(doc.find("a\\nb\\tc\\u0001"), std::string::npos);
  EXPECT_EQ(doc.find('\x01'), std::string::npos);
}

TEST(ChromeTraceTest, SubMicrosecondPrecisionKept) {
  // 1234 ns -> ts 1.234 us: nanosecond offsets survive in the fraction.
  const auto doc = to_chrome_trace(
      {make_span(0x1, 0x2, 0, SpanKind::kClientQuery, 1234, 2791, "")}, "p");
  EXPECT_NE(doc.find("\"ts\":1.234"), std::string::npos);
  EXPECT_NE(doc.find("\"dur\":1.557"), std::string::npos);
}

}  // namespace
}  // namespace rlir::obs
