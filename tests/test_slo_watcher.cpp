// SloWatcher: windowed p99 thresholds over the history store, with RLIR
// localization of the violating link and obs surfacing. The scenarios plant
// one slow link among fast ones — the watcher must (a) flag exactly the
// flows whose windowed quantile breaches, (b) name the slow link anomalous,
// (c) report through counters and kSloViolation trace events, and (d) stay
// quiet when nothing breaches.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "collect/estimate_record.h"
#include "collect/history.h"
#include "collect/slo_watcher.h"
#include "common/rng.h"
#include "obs/event_trace.h"
#include "obs/metrics.h"

namespace rlir::collect {
namespace {

net::FiveTuple flow_key(std::uint32_t i) {
  net::FiveTuple key;
  key.src = net::Ipv4Address(10, 2, 0, static_cast<std::uint8_t>(i));
  key.dst = net::Ipv4Address(192, 168, 0, 2);
  key.src_port = static_cast<std::uint16_t>(5000 + i);
  key.dst_port = 80;
  key.proto = static_cast<std::uint8_t>(net::IpProto::kUdp);
  return key;
}

/// Feeds `epochs` epochs where flow f rides link f % links; flows on
/// `slow_link` see latency around slow_ns, everyone else around fast_ns.
void feed(SketchHistoryStore& store, std::uint32_t epochs, std::uint32_t flows,
          LinkId links, LinkId slow_link, double fast_ns, double slow_ns) {
  common::Xoshiro256 rng(41);
  for (std::uint32_t epoch = 0; epoch < epochs; ++epoch) {
    for (std::uint32_t f = 0; f < flows; ++f) {
      EstimateRecord r;
      r.key = flow_key(f);
      r.link = static_cast<LinkId>(f % links);
      r.epoch = epoch;
      r.sender = 1;
      const double base = r.link == slow_link ? slow_ns : fast_ns;
      for (int s = 0; s < 12; ++s) r.sketch.add(base * rng.uniform(0.9, 1.1));
      store.ingest(r);
    }
  }
}

TEST(SloWatcherTest, BadConfigsThrow) {
  SketchHistoryStore store;
  SloWatcherConfig cfg;
  cfg.threshold_ns = 1e6;
  EXPECT_THROW(SloWatcher(cfg, nullptr), std::invalid_argument);
  cfg.threshold_ns = 0.0;
  EXPECT_THROW(SloWatcher(cfg, &store), std::invalid_argument);
  cfg.threshold_ns = 1e6;
  cfg.window_epochs = 0;
  EXPECT_THROW(SloWatcher(cfg, &store), std::invalid_argument);
  cfg = {};
  cfg.threshold_ns = 1e6;
  cfg.quantile = 1.5;
  EXPECT_THROW(SloWatcher(cfg, &store), std::invalid_argument);
  cfg = {};
  cfg.threshold_ns = 1e6;
  cfg.max_flows_checked = 0;
  EXPECT_THROW(SloWatcher(cfg, &store), std::invalid_argument);
}

TEST(SloWatcherTest, QuietWhenUnderThreshold) {
  SketchHistoryStore store;
  feed(store, 8, 8, 4, /*slow_link=*/99, 40e3, 40e3);  // nothing slow
  SloWatcherConfig cfg;
  cfg.threshold_ns = 1e6;  // far above the ~40us workload
  SloWatcher watcher(cfg, &store);
  EXPECT_TRUE(watcher.check(7).empty());
  EXPECT_EQ(watcher.violations(), 0u);
  EXPECT_EQ(watcher.checks(), 1u);
}

TEST(SloWatcherTest, FlagsBreachingFlowsAndLocalizesSlowLink) {
  obs::MetricsRegistry registry;
  obs::EventTrace trace;
  SketchHistoryStore store;
  constexpr std::uint32_t kFlows = 8;
  constexpr LinkId kLinks = 4;
  constexpr LinkId kSlow = 2;
  feed(store, 8, kFlows, kLinks, kSlow, 40e3, 900e3);

  SloWatcherConfig cfg;
  cfg.threshold_ns = 200e3;  // between the fast (~40us) and slow (~900us) tiers
  cfg.window_epochs = 8;
  cfg.instruments.registry = &registry;
  cfg.instruments.trace = &trace;
  SloWatcher watcher(cfg, &store);

  const auto violations = watcher.check(7);
  // Exactly the flows riding the slow link breach: f % kLinks == kSlow.
  std::vector<net::FiveTuple> want;
  for (std::uint32_t f = kSlow; f < kFlows; f += kLinks) want.push_back(flow_key(f));
  ASSERT_EQ(violations.size(), want.size());
  for (const auto& v : violations) {
    EXPECT_NE(std::find(want.begin(), want.end(), v.key), want.end())
        << v.key.to_string() << " breached unexpectedly";
    EXPECT_GT(v.value_ns, cfg.threshold_ns);
    EXPECT_DOUBLE_EQ(v.threshold_ns, cfg.threshold_ns);
    EXPECT_EQ(v.window_first, 0u);
    EXPECT_EQ(v.window_last, 7u);

    // The localizer names the slow link, and only it.
    ASSERT_EQ(v.findings.size(), static_cast<std::size_t>(kLinks));
    for (const auto& finding : v.findings) {
      const bool is_slow = finding.segment == "link" + std::to_string(kSlow);
      EXPECT_EQ(finding.anomalous, is_slow) << finding.segment;
    }
  }

  EXPECT_EQ(watcher.violations(), violations.size());
  EXPECT_EQ(trace.count(obs::EventKind::kSloViolation), violations.size());
}

TEST(SloWatcherTest, PollChecksEachSealedEpochOnce) {
  SketchHistoryStore store;
  feed(store, 4, 4, 2, /*slow_link=*/1, 40e3, 900e3);
  SloWatcherConfig cfg;
  cfg.threshold_ns = 200e3;
  cfg.window_epochs = 2;
  SloWatcher watcher(cfg, &store);

  const auto first = watcher.poll();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(watcher.checks(), 1u);
  EXPECT_TRUE(watcher.poll().empty()) << "same epoch must not re-check";
  EXPECT_EQ(watcher.checks(), 1u);

  // A new sealed epoch re-arms it.
  common::Xoshiro256 rng(43);
  EstimateRecord r;
  r.key = flow_key(1);
  r.link = 1;
  r.epoch = 4;
  r.sender = 1;
  for (int s = 0; s < 12; ++s) r.sketch.add(900e3 * rng.uniform(0.9, 1.1));
  store.ingest(r);
  EXPECT_FALSE(watcher.poll().empty());
  EXPECT_EQ(watcher.checks(), 2u);
}

TEST(SloWatcherTest, EpochHookChecksThePreviousEpoch) {
  obs::EventTrace trace;
  SketchHistoryStore store;
  feed(store, 4, 4, 2, /*slow_link=*/0, 40e3, 900e3);
  SloWatcherConfig cfg;
  cfg.threshold_ns = 200e3;
  cfg.window_epochs = 4;
  cfg.instruments.trace = &trace;
  SloWatcher watcher(cfg, &store);

  auto hook = watcher.make_epoch_hook();
  hook(4);  // epoch 4 begins -> epoch 3 is the newest sealed one
  EXPECT_EQ(watcher.checks(), 1u);
  EXPECT_GT(watcher.violations(), 0u);
  EXPECT_GT(trace.count(obs::EventKind::kSloViolation), 0u);
}

}  // namespace
}  // namespace rlir::collect
