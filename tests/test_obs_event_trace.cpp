// EventTrace: bounded ring semantics (most-recent kept, dropped counted,
// per-kind totals survive eviction), plus the LogBridge satellite — log
// lines bump per-level counters and WARN+ lines land in the trace as kLog
// events, with clean uninstall.
#include "obs/event_trace.h"

#include <gtest/gtest.h>

#include <string>

#include "common/logging.h"
#include "obs/log_bridge.h"
#include "obs/metrics.h"

namespace rlir::obs {
namespace {

TEST(EventTrace, RecordsInOrderWithCounts) {
  EventTrace trace(8);
  trace.record(EventKind::kConnect, 1, "ep0");
  trace.record(EventKind::kShed, 42, "lane3");
  trace.record(EventKind::kConnect, 2);
  const auto snap = trace.snapshot();
  ASSERT_EQ(snap.events.size(), 3u);
  EXPECT_EQ(snap.events[0].kind, EventKind::kConnect);
  EXPECT_EQ(snap.events[1].kind, EventKind::kShed);
  EXPECT_EQ(snap.events[1].value, 42u);
  EXPECT_EQ(snap.events[1].detail, "lane3");
  EXPECT_EQ(snap.count(EventKind::kConnect), 2u);
  EXPECT_EQ(snap.count(EventKind::kShed), 1u);
  EXPECT_EQ(snap.count(EventKind::kRebalance), 0u);
  EXPECT_EQ(snap.dropped, 0u);
  EXPECT_GT(snap.events[0].ts_ns, 0);
}

TEST(EventTrace, RingEvictsOldestAndCountsDrops) {
  EventTrace trace(4);
  for (std::uint64_t i = 0; i < 10; ++i) trace.record(EventKind::kEpochFlush, i);
  const auto snap = trace.snapshot();
  ASSERT_EQ(snap.events.size(), 4u);
  // Most recent survive: values 6..9.
  EXPECT_EQ(snap.events.front().value, 6u);
  EXPECT_EQ(snap.events.back().value, 9u);
  EXPECT_EQ(snap.dropped, 6u);
  // The per-kind total still sees every event ever recorded.
  EXPECT_EQ(snap.count(EventKind::kEpochFlush), 10u);
  EXPECT_EQ(trace.count(EventKind::kEpochFlush), 10u);
}

TEST(EventTrace, DetailTruncatedToCap) {
  EventTrace trace;
  trace.record(EventKind::kLog, 0, std::string(500, 'x'));
  const auto snap = trace.snapshot();
  ASSERT_EQ(snap.events.size(), 1u);
  EXPECT_EQ(snap.events[0].detail.size(), EventTrace::kMaxDetail);
}

TEST(EventTrace, ZeroCapacityClampsToOne) {
  EventTrace trace(0);
  EXPECT_EQ(trace.capacity(), 1u);
  trace.record(EventKind::kConnect);
  trace.record(EventKind::kDisconnect);
  const auto snap = trace.snapshot();
  ASSERT_EQ(snap.events.size(), 1u);
  EXPECT_EQ(snap.events[0].kind, EventKind::kDisconnect);
}

TEST(EventKindNames, AllKindsNamed) {
  for (std::size_t i = 1; i <= kEventKindCount; ++i) {
    const char* name = event_kind_name(static_cast<EventKind>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string(name).size(), 0u);
  }
}

class LogBridgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_threshold_ = common::log_threshold();
    common::set_log_threshold(common::LogLevel::kDebug);
  }
  void TearDown() override { common::set_log_threshold(saved_threshold_); }

 private:
  common::LogLevel saved_threshold_;
};

TEST_F(LogBridgeTest, CountsPerLevelAndTracesWarnPlus) {
  MetricsRegistry registry;
  EventTrace trace;
  LogBridge bridge(registry, &trace);

  common::log_debug("noise");
  common::log_info("fyi");
  common::log_warn("queue ", 3, " backing up");
  common::log_error("stream died");

  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.samples.size(), 4u);  // one counter per level
  std::uint64_t total = 0;
  for (const auto& sample : snap.samples) {
    EXPECT_EQ(sample.name, "rlir_log_lines_total");
    total += sample.counter;
  }
  EXPECT_EQ(total, 4u);

  // Only WARN+ reach the trace, with the formatted message as detail.
  const auto events = trace.snapshot();
  ASSERT_EQ(events.count(EventKind::kLog), 2u);
  ASSERT_EQ(events.events.size(), 2u);
  EXPECT_EQ(events.events[0].detail, "queue 3 backing up");
  EXPECT_EQ(events.events[1].detail, "stream died");
}

TEST_F(LogBridgeTest, ThresholdStillFiltersBeforeTheBridge) {
  MetricsRegistry registry;
  LogBridge bridge(registry, nullptr);
  common::set_log_threshold(common::LogLevel::kError);
  common::log_warn("suppressed");
  common::log_error("counted");
  std::uint64_t total = 0;
  for (const auto& sample : registry.snapshot().samples) total += sample.counter;
  EXPECT_EQ(total, 1u);
}

TEST_F(LogBridgeTest, DestructorUninstallsSink) {
  MetricsRegistry registry;
  {
    LogBridge bridge(registry, nullptr);
    common::log_error("while installed");
  }
  // After the bridge is gone the counters must not move (a dangling sink
  // would crash or corrupt here).
  common::log_error("after uninstall");
  std::uint64_t total = 0;
  for (const auto& sample : registry.snapshot().samples) total += sample.counter;
  EXPECT_EQ(total, 1u);
}

}  // namespace
}  // namespace rlir::obs
