// Integration tests: exp/experiment.h — the shared evaluation harness.
// These run scaled-down versions of the bench configurations and assert the
// paper's qualitative findings hold (the benches print the full curves).
#include <gtest/gtest.h>

#include "exp/experiment.h"

namespace rlir::exp {
namespace {

using timebase::Duration;

ExperimentConfig quick(double util, rli::InjectionScheme scheme,
                       sim::CrossModel model = sim::CrossModel::kUniform) {
  ExperimentConfig cfg;
  cfg.duration = Duration::milliseconds(150);
  cfg.target_utilization = util;
  cfg.scheme = scheme;
  cfg.cross_model = model;
  cfg.seed = 11;
  return cfg;
}

TEST(TwoHopExperiment, CalibrationHitsUniformTargets) {
  for (const double util : {0.34, 0.67, 0.93}) {
    const auto result = run_two_hop_experiment(quick(util, rli::InjectionScheme::kStatic));
    EXPECT_NEAR(result.measured_utilization, util, 0.05) << "target " << util;
  }
}

TEST(TwoHopExperiment, BurstyCalibrationHitsAverageTarget) {
  const auto result = run_two_hop_experiment(
      quick(0.67, rli::InjectionScheme::kStatic, sim::CrossModel::kBursty));
  EXPECT_NEAR(result.measured_utilization, 0.67, 0.08);
}

TEST(TwoHopExperiment, TrueDelayRegimesMatchPaperOrdering) {
  // Paper Section 4.2: 3.0us @67% random, 83us @93% random, 117us @67%
  // bursty. Assert the ordering and rough magnitudes.
  const auto low = run_two_hop_experiment(quick(0.67, rli::InjectionScheme::kStatic));
  const auto high = run_two_hop_experiment(quick(0.93, rli::InjectionScheme::kStatic));
  const auto bursty = run_two_hop_experiment(
      quick(0.67, rli::InjectionScheme::kStatic, sim::CrossModel::kBursty));

  EXPECT_LT(low.true_mean_latency_ns, 20'000.0);       // a few us
  EXPECT_GT(high.true_mean_latency_ns, 30'000.0);      // tens of us
  EXPECT_GT(bursty.true_mean_latency_ns, 3.0 * low.true_mean_latency_ns);
}

TEST(TwoHopExperiment, AccuracyOrderingAcrossSchemes) {
  const auto adaptive = run_two_hop_experiment(quick(0.93, rli::InjectionScheme::kAdaptive));
  const auto fixed = run_two_hop_experiment(quick(0.93, rli::InjectionScheme::kStatic));
  ASSERT_GT(adaptive.report.flow_count(), 100u);
  // 10x the probes: at least as accurate (Figure 4a).
  EXPECT_LE(adaptive.report.median_mean_error(), fixed.report.median_mean_error() * 1.05);
  EXPECT_GT(adaptive.references_injected, fixed.references_injected * 5);
}

TEST(TwoHopExperiment, NoReferencesMeansNoEstimates) {
  ExperimentConfig cfg = quick(0.67, rli::InjectionScheme::kStatic);
  cfg.inject_references = false;
  const auto result = run_two_hop_experiment(cfg);
  EXPECT_EQ(result.references_injected, 0u);
  EXPECT_EQ(result.report.flow_count(), 0u);
  EXPECT_GT(result.regular_packets, 0u);
}

TEST(TwoHopExperiment, ReferenceLoadIsSmall) {
  // Even adaptive 1-and-10 keeps probe overhead well under 1% of bytes
  // (64B probes vs ~730B data packets).
  const auto result = run_two_hop_experiment(quick(0.9, rli::InjectionScheme::kAdaptive));
  const double probe_bytes = static_cast<double>(result.references_injected) * 64.0;
  const double data_bytes = static_cast<double>(result.regular_packets) * 700.0;
  EXPECT_LT(probe_bytes / data_bytes, 0.02);
}

TEST(TwoHopExperiment, LabelsAreDescriptive) {
  EXPECT_EQ(quick(0.93, rli::InjectionScheme::kAdaptive).label(), "adaptive, random, 93%");
  EXPECT_EQ(quick(0.34, rli::InjectionScheme::kStatic, sim::CrossModel::kBursty).label(),
            "static, bursty, 34%");
}

TEST(FatTreeExperiment, ReverseEcmpAndMarkingAgree) {
  FatTreeExperimentConfig cfg;
  cfg.duration = Duration::milliseconds(15);
  cfg.core_delay_step = Duration::microseconds(20);

  cfg.demux = DemuxStrategy::kReverseEcmp;
  const auto ecmp = run_fattree_downstream_experiment(cfg);
  cfg.demux = DemuxStrategy::kMarking;
  const auto marking = run_fattree_downstream_experiment(cfg);

  ASSERT_GT(ecmp.report.flow_count(), 50u);
  EXPECT_EQ(ecmp.unclassified_packets, 0u);
  EXPECT_EQ(marking.unclassified_packets, 0u);
  // Both are exact path attributions: identical flow sets, near-identical
  // accuracy.
  EXPECT_EQ(ecmp.report.flow_count(), marking.report.flow_count());
  EXPECT_NEAR(ecmp.report.median_mean_error(), marking.report.median_mean_error(), 1e-9);
}

TEST(FatTreeExperiment, NoDemuxIsMuchWorseUnderAsymmetry) {
  FatTreeExperimentConfig cfg;
  cfg.duration = Duration::milliseconds(15);
  cfg.core_delay_step = Duration::microseconds(20);

  cfg.demux = DemuxStrategy::kReverseEcmp;
  const auto good = run_fattree_downstream_experiment(cfg);
  cfg.demux = DemuxStrategy::kNone;
  const auto bad = run_fattree_downstream_experiment(cfg);

  // Section 3.1's motivation: without demux the estimates are "totally
  // wrong" — an order of magnitude worse here.
  EXPECT_GT(bad.report.median_mean_error(), 5.0 * good.report.median_mean_error());
}

}  // namespace
}  // namespace rlir::exp
