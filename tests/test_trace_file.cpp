// Unit tests: trace/trace_file.h — binary trace persistence.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "trace/synthetic.h"
#include "trace/trace_file.h"

namespace rlir::trace {
namespace {

std::vector<net::Packet> sample_packets() {
  SyntheticConfig cfg;
  cfg.duration = timebase::Duration::milliseconds(5);
  cfg.offered_bps = 1e9;
  cfg.seed = 99;
  auto packets = SyntheticTraceGenerator(cfg).generate_all();
  // Add a reference packet to cover all fields.
  auto ref = net::make_reference_packet(7, timebase::TimePoint(123),
                                        timebase::TimePoint(456), 999);
  ref.tos = 3;
  packets.push_back(ref);
  return packets;
}

void expect_equal(const net::Packet& a, const net::Packet& b) {
  EXPECT_EQ(a.ts, b.ts);
  EXPECT_EQ(a.injected_at, b.injected_at);
  EXPECT_EQ(a.ref_stamp, b.ref_stamp);
  EXPECT_EQ(a.key, b.key);
  EXPECT_EQ(a.size_bytes, b.size_bytes);
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.sender, b.sender);
  EXPECT_EQ(a.tos, b.tos);
  EXPECT_EQ(a.seq, b.seq);
}

TEST(TraceFile, StreamRoundTrip) {
  const auto packets = sample_packets();
  std::stringstream buffer;
  TraceWriter::write(buffer, packets);
  const auto loaded = TraceReader::read(buffer);
  ASSERT_EQ(loaded.size(), packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) expect_equal(packets[i], loaded[i]);
}

TEST(TraceFile, FileRoundTrip) {
  const auto packets = sample_packets();
  const std::string path = ::testing::TempDir() + "/rlir_trace_test.bin";
  TraceWriter::write_file(path, packets);
  const auto loaded = TraceReader::read_file(path);
  ASSERT_EQ(loaded.size(), packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) expect_equal(packets[i], loaded[i]);
  std::remove(path.c_str());
}

TEST(TraceFile, EmptyTraceRoundTrip) {
  std::stringstream buffer;
  TraceWriter::write(buffer, {});
  EXPECT_TRUE(TraceReader::read(buffer).empty());
}

TEST(TraceFile, BadMagicRejected) {
  std::stringstream buffer;
  buffer << "NOPE-this-is-not-a-trace";
  EXPECT_THROW((void)TraceReader::read(buffer), std::runtime_error);
}

TEST(TraceFile, TruncatedHeaderRejected) {
  std::stringstream buffer;
  buffer << "RLTR\x01";
  EXPECT_THROW((void)TraceReader::read(buffer), std::runtime_error);
}

TEST(TraceFile, TruncatedRecordsRejected) {
  const auto packets = sample_packets();
  std::stringstream buffer;
  TraceWriter::write(buffer, packets);
  std::string data = buffer.str();
  data.resize(data.size() - 10);  // chop the last record
  std::stringstream truncated(data);
  EXPECT_THROW((void)TraceReader::read(truncated), std::runtime_error);
}

TEST(TraceFile, MissingFileRejected) {
  EXPECT_THROW((void)TraceReader::read_file("/nonexistent/path/trace.bin"),
               std::runtime_error);
}

TEST(TraceFile, ForEachVisitsEveryPacketInOrder) {
  const auto packets = sample_packets();
  std::stringstream buffer;
  TraceWriter::write(buffer, packets);

  std::vector<net::Packet> visited;
  const auto count =
      TraceReader::for_each(buffer, [&visited](const net::Packet& pkt) { visited.push_back(pkt); });
  EXPECT_EQ(count, packets.size());
  ASSERT_EQ(visited.size(), packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) expect_equal(packets[i], visited[i]);
}

TEST(TraceFile, ForEachFileMatchesRead) {
  const auto packets = sample_packets();
  const std::string path = ::testing::TempDir() + "/rlir_trace_foreach_test.bin";
  TraceWriter::write_file(path, packets);

  std::uint64_t streamed = 0;
  std::uint64_t seq_sum = 0;
  const auto count = TraceReader::for_each_file(path, [&](const net::Packet& pkt) {
    ++streamed;
    seq_sum += pkt.seq;
  });
  EXPECT_EQ(count, packets.size());
  EXPECT_EQ(streamed, packets.size());
  std::uint64_t expected_sum = 0;
  for (const auto& pkt : TraceReader::read_file(path)) expected_sum += pkt.seq;
  EXPECT_EQ(seq_sum, expected_sum);
  std::remove(path.c_str());
}

TEST(TraceFile, ForEachEmptyTrace) {
  std::stringstream buffer;
  TraceWriter::write(buffer, {});
  std::uint64_t visited = 0;
  EXPECT_EQ(TraceReader::for_each(buffer, [&visited](const net::Packet&) { ++visited; }), 0u);
  EXPECT_EQ(visited, 0u);
}

TEST(TraceFile, ForEachRejectsTruncation) {
  const auto packets = sample_packets();
  std::stringstream buffer;
  TraceWriter::write(buffer, packets);
  std::string data = buffer.str();
  data.resize(data.size() - 10);
  std::stringstream truncated(data);
  std::uint64_t visited = 0;
  EXPECT_THROW(
      (void)TraceReader::for_each(truncated, [&visited](const net::Packet&) { ++visited; }),
      std::runtime_error);
  // Everything before the damage was still streamed — that's the point of
  // the incremental path.
  EXPECT_EQ(visited, packets.size() - 1);
}

}  // namespace
}  // namespace rlir::trace
