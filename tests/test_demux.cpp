// Unit tests: rlir/demux.h — the three demultiplexing strategies.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "rlir/demux.h"

namespace rlir::rlir {
namespace {

net::Packet packet_from(net::Ipv4Address src, net::Ipv4Address dst = net::Ipv4Address(),
                        net::TosMark tos = 0) {
  net::Packet p;
  p.key.src = src;
  p.key.dst = dst;
  p.tos = tos;
  p.kind = net::PacketKind::kRegular;
  return p;
}

TEST(PrefixDemux, MapsOriginBlocksToSenders) {
  PrefixDemux demux;
  demux.add_origin(net::Ipv4Prefix(net::Ipv4Address(10, 0, 0, 0), 24), 1);
  demux.add_origin(net::Ipv4Prefix(net::Ipv4Address(10, 0, 1, 0), 24), 2);
  EXPECT_EQ(demux.classify(packet_from(net::Ipv4Address(10, 0, 0, 5))), 1);
  EXPECT_EQ(demux.classify(packet_from(net::Ipv4Address(10, 0, 1, 5))), 2);
  EXPECT_FALSE(demux.classify(packet_from(net::Ipv4Address(10, 0, 2, 5))));
  EXPECT_EQ(demux.rule_count(), 2u);
}

TEST(PrefixDemux, LongestPrefixWins) {
  PrefixDemux demux;
  demux.add_origin(net::Ipv4Prefix(net::Ipv4Address(10, 0, 0, 0), 8), 1);
  demux.add_origin(net::Ipv4Prefix(net::Ipv4Address(10, 9, 0, 0), 16), 2);
  EXPECT_EQ(demux.classify(packet_from(net::Ipv4Address(10, 9, 1, 1))), 2);
  EXPECT_EQ(demux.classify(packet_from(net::Ipv4Address(10, 8, 1, 1))), 1);
}

TEST(MarkingDemux, MapsTosMarks) {
  MarkingDemux demux;
  demux.map_mark(1, 100);
  demux.map_mark(2, 101);
  EXPECT_EQ(demux.classify(packet_from({}, {}, 1)), 100);
  EXPECT_EQ(demux.classify(packet_from({}, {}, 2)), 101);
  EXPECT_FALSE(demux.classify(packet_from({}, {}, 0)));  // unmarked
  EXPECT_FALSE(demux.classify(packet_from({}, {}, 9)));  // unknown mark
}

TEST(SingleSenderDemux, AttributesEverything) {
  const SingleSenderDemux demux(7);
  EXPECT_EQ(demux.classify(packet_from(net::Ipv4Address(1, 2, 3, 4))), 7);
  EXPECT_EQ(demux.classify(packet_from(net::Ipv4Address(9, 9, 9, 9))), 7);
}

class ReverseEcmpDemuxTest : public ::testing::Test {
 protected:
  ReverseEcmpDemuxTest() : topo_(4), receiver_tor_(topo_.tor(3, 0)) {}

  topo::FatTree topo_;
  topo::Crc32EcmpHasher hasher_;
  topo::NodeId receiver_tor_;
};

TEST_F(ReverseEcmpDemuxTest, ValidatesConstruction) {
  EXPECT_THROW(ReverseEcmpDemux(nullptr, &hasher_, receiver_tor_), std::invalid_argument);
  EXPECT_THROW(ReverseEcmpDemux(&topo_, nullptr, receiver_tor_), std::invalid_argument);
  EXPECT_THROW(ReverseEcmpDemux(&topo_, &hasher_, topo_.core(0)), std::invalid_argument);
  ReverseEcmpDemux demux(&topo_, &hasher_, receiver_tor_);
  EXPECT_THROW(demux.set_sender_at_core(4, 1), std::out_of_range);
  EXPECT_THROW(demux.set_sender_at_core(-1, 1), std::out_of_range);
}

TEST_F(ReverseEcmpDemuxTest, CrossPodAttributedToForwardRouteCore) {
  ReverseEcmpDemux demux(&topo_, &hasher_, receiver_tor_);
  for (int c = 0; c < topo_.core_count(); ++c) {
    demux.set_sender_at_core(c, static_cast<net::SenderId>(100 + c));
  }
  common::Xoshiro256 rng(1);
  const auto origin = topo_.tor(0, 0);
  for (int i = 0; i < 500; ++i) {
    net::Packet p = packet_from(
        topo_.host_address(origin, static_cast<int>(rng.uniform_u64(200))),
        topo_.host_address(receiver_tor_, static_cast<int>(rng.uniform_u64(200))));
    p.key.src_port = static_cast<std::uint16_t>(rng.next());
    p.key.dst_port = static_cast<std::uint16_t>(rng.next());
    const auto route = topo::ecmp_route(topo_, hasher_, p.key, origin, receiver_tor_);
    const auto sender = demux.classify(p);
    ASSERT_TRUE(sender);
    EXPECT_EQ(*sender, 100 + route[2].index);
  }
}

TEST_F(ReverseEcmpDemuxTest, SamePodUsesUpstreamRules) {
  ReverseEcmpDemux demux(&topo_, &hasher_, receiver_tor_);
  demux.set_sender_at_core(0, 100);
  const auto same_pod = topo_.tor(3, 1);  // T8, the paper's S5 case
  demux.add_same_pod_origin(topo_.host_prefix(same_pod), 55);
  // Same-pod origin with a registered rule.
  const auto hit = demux.classify(packet_from(topo_.host_address(same_pod, 1),
                                              topo_.host_address(receiver_tor_, 1)));
  ASSERT_TRUE(hit);
  EXPECT_EQ(*hit, 55);
  // Same-pod origin without a rule: unattributable.
  EXPECT_FALSE(demux.classify(packet_from(topo_.host_address(receiver_tor_, 2),
                                          topo_.host_address(receiver_tor_, 1))));
}

TEST_F(ReverseEcmpDemuxTest, UnknownOriginUnclassified) {
  ReverseEcmpDemux demux(&topo_, &hasher_, receiver_tor_);
  demux.set_sender_at_core(0, 100);
  EXPECT_FALSE(demux.classify(packet_from(net::Ipv4Address(192, 168, 0, 1))));
}

TEST_F(ReverseEcmpDemuxTest, UnregisteredCoreUnclassified) {
  ReverseEcmpDemux demux(&topo_, &hasher_, receiver_tor_);
  // No senders registered: every cross-pod packet is unattributable.
  EXPECT_FALSE(demux.classify(packet_from(topo_.host_address(topo_.tor(0, 0), 1),
                                          topo_.host_address(receiver_tor_, 1))));
}

}  // namespace
}  // namespace rlir::rlir
