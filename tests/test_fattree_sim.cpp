// Unit tests: topo/fattree_sim.h — event-driven fabric simulation.
#include <gtest/gtest.h>

#include "rlir/sender_agent.h"
#include "sim/tap.h"
#include "timebase/clock.h"
#include "topo/fattree_sim.h"
#include "trace/synthetic.h"

namespace rlir::topo {
namespace {

using timebase::Duration;
using timebase::TimePoint;

class FatTreeSimTest : public ::testing::Test {
 protected:
  FatTreeSimTest() : topo_(4) {}

  net::Packet host_packet(NodeId src_tor, NodeId dst_tor, std::uint64_t seq,
                          std::int64_t ts_ns = 0, std::uint16_t sport = 1234) {
    net::Packet p;
    p.key.src = topo_.host_address(src_tor, 1);
    p.key.dst = topo_.host_address(dst_tor, 1);
    p.key.src_port = sport;
    p.key.dst_port = 80;
    p.seq = seq;
    p.size_bytes = 1000;
    p.ts = TimePoint(ts_ns);
    p.kind = net::PacketKind::kRegular;
    return p;
  }

  FatTree topo_;
  Crc32EcmpHasher hasher_;
};

TEST_F(FatTreeSimTest, ValidatesConstruction) {
  EXPECT_THROW(FatTreeSim(nullptr, FatTreeSimConfig{}, &hasher_), std::invalid_argument);
  EXPECT_THROW(FatTreeSim(&topo_, FatTreeSimConfig{}, nullptr), std::invalid_argument);
}

TEST_F(FatTreeSimTest, RejectsForeignSourceAddress) {
  FatTreeSim sim(&topo_, FatTreeSimConfig{}, &hasher_);
  net::Packet p = host_packet(topo_.tor(0, 0), topo_.tor(1, 0), 1);
  p.key.src = net::Ipv4Address(192, 168, 0, 1);
  EXPECT_THROW(sim.inject_from_host(p), std::invalid_argument);
}

TEST_F(FatTreeSimTest, DeliversCrossPodPacket) {
  FatTreeSim sim(&topo_, FatTreeSimConfig{}, &hasher_);
  sim.inject_from_host(host_packet(topo_.tor(0, 0), topo_.tor(3, 0), 1));
  sim.run();
  EXPECT_EQ(sim.stats().delivered_regular, 1u);
  EXPECT_EQ(sim.stats().dropped, 0u);
  // Cross-pod: ToR -> edge -> core -> edge -> ToR = 4 link hops.
  EXPECT_EQ(sim.stats().forwarded_hops, 4u);
}

TEST_F(FatTreeSimTest, DeliversSamePodPacket) {
  FatTreeSim sim(&topo_, FatTreeSimConfig{}, &hasher_);
  sim.inject_from_host(host_packet(topo_.tor(0, 0), topo_.tor(0, 1), 1));
  sim.run();
  EXPECT_EQ(sim.stats().delivered_regular, 1u);
  EXPECT_EQ(sim.stats().forwarded_hops, 2u);  // ToR -> edge -> ToR
}

TEST_F(FatTreeSimTest, ArrivalTapsFireAlongThePath) {
  FatTreeSim sim(&topo_, FatTreeSimConfig{}, &hasher_);
  const auto src = topo_.tor(0, 0);
  const auto dst = topo_.tor(3, 0);
  const auto pkt = host_packet(src, dst, 1);
  const auto route = ecmp_route(topo_, hasher_, pkt.key, src, dst);

  std::vector<sim::RecordingTap> taps(route.size());
  for (std::size_t i = 0; i < route.size(); ++i) {
    sim.add_arrival_tap(route[i], &taps[i]);
  }
  sim.inject_from_host(pkt);
  sim.run();
  for (std::size_t i = 0; i < route.size(); ++i) {
    EXPECT_EQ(taps[i].packets().size(), 1u) << "hop " << i;
  }
  // Arrival times strictly increase along the path.
  for (std::size_t i = 1; i < route.size(); ++i) {
    EXPECT_GT(taps[i].packets()[0].ts, taps[i - 1].packets()[0].ts);
  }
}

TEST_F(FatTreeSimTest, DelayGrowsWithInjectedAnomaly) {
  const auto src = topo_.tor(0, 0);
  const auto dst = topo_.tor(3, 0);
  const auto pkt = host_packet(src, dst, 1);
  const auto route = ecmp_route(topo_, hasher_, pkt.key, src, dst);
  const NodeId via_core = route[2];

  const auto delay_through = [&](Duration extra) {
    FatTreeSim sim(&topo_, FatTreeSimConfig{}, &hasher_);
    if (extra > Duration::zero()) sim.add_extra_delay(via_core, extra);
    sim::RecordingTap tap;
    sim.add_arrival_tap(dst, &tap);
    sim.inject_from_host(pkt);
    sim.run();
    return tap.packets().at(0).true_delay();
  };

  const auto base = delay_through(Duration::zero());
  const auto slowed = delay_through(Duration::microseconds(40));
  EXPECT_NEAR(static_cast<double>((slowed - base).ns()), 40'000.0, 100.0);
}

TEST_F(FatTreeSimTest, CoreMarkingStampsTos) {
  FatTreeSimConfig cfg;
  cfg.core_marking = true;
  FatTreeSim sim(&topo_, cfg, &hasher_);
  const auto src = topo_.tor(0, 0);
  const auto dst = topo_.tor(3, 0);
  const auto pkt = host_packet(src, dst, 1);
  const auto route = ecmp_route(topo_, hasher_, pkt.key, src, dst);

  sim::RecordingTap tap;
  sim.add_arrival_tap(dst, &tap);
  sim.inject_from_host(pkt);
  sim.run();
  ASSERT_EQ(tap.packets().size(), 1u);
  EXPECT_EQ(static_cast<int>(tap.packets()[0].tos), route[2].index + 1);
}

TEST_F(FatTreeSimTest, MarkingDisabledLeavesTosZero) {
  FatTreeSim sim(&topo_, FatTreeSimConfig{}, &hasher_);
  sim::RecordingTap tap;
  sim.add_arrival_tap(topo_.tor(3, 0), &tap);
  sim.inject_from_host(host_packet(topo_.tor(0, 0), topo_.tor(3, 0), 1));
  sim.run();
  ASSERT_EQ(tap.packets().size(), 1u);
  EXPECT_EQ(tap.packets()[0].tos, 0);
}

TEST_F(FatTreeSimTest, ReferencePacketsFollowPinnedRouteAndAreConsumed) {
  FatTreeSim sim(&topo_, FatTreeSimConfig{}, &hasher_);
  const auto tor = topo_.tor(0, 0);
  const auto core = topo_.core(3);

  sim::RecordingTap core_tap;
  sim.add_arrival_tap(core, &core_tap);
  sim::RecordingTap other_core_tap;
  sim.add_arrival_tap(topo_.core(0), &other_core_tap);

  auto ref = net::make_reference_packet(1, TimePoint(0), TimePoint(0),
                                        sim.allocate_ref_seq());
  sim.inject_reference(ref, tor, core);
  sim.run();

  EXPECT_EQ(core_tap.packets().size(), 1u);
  EXPECT_TRUE(other_core_tap.packets().empty());
  EXPECT_EQ(sim.stats().delivered_reference, 1u);
}

TEST_F(FatTreeSimTest, ReferenceRouteValidation) {
  FatTreeSim sim(&topo_, FatTreeSimConfig{}, &hasher_);
  auto ref = net::make_reference_packet(1, TimePoint(0), TimePoint(0), 1);
  // ToR -> ToR probes are not a supported segment shape.
  EXPECT_THROW(sim.inject_reference(ref, topo_.tor(0, 0), topo_.tor(1, 0)),
               std::invalid_argument);
}

TEST_F(FatTreeSimTest, LinkStatsExposeTraffic) {
  FatTreeSim sim(&topo_, FatTreeSimConfig{}, &hasher_);
  const auto src = topo_.tor(0, 0);
  const auto dst = topo_.tor(3, 0);
  const auto pkt = host_packet(src, dst, 1);
  const auto route = ecmp_route(topo_, hasher_, pkt.key, src, dst);
  sim.inject_from_host(pkt);
  sim.run();
  const auto* stats = sim.link_stats(route[0], route[1]);
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->arrived_packets, 1u);
  EXPECT_EQ(sim.link_stats(topo_.tor(1, 0), topo_.edge(1, 0)), nullptr);  // unused link
}

TEST_F(FatTreeSimTest, ManyFlowsAllAccounted) {
  FatTreeSim sim(&topo_, FatTreeSimConfig{}, &hasher_);
  trace::SyntheticConfig cfg;
  cfg.duration = Duration::milliseconds(5);
  cfg.offered_bps = 2e9;
  cfg.seed = 77;
  cfg.src_pool = topo_.host_prefix(topo_.tor(0, 0));
  cfg.dst_pool = topo_.host_prefix(topo_.tor(2, 1));
  const auto packets = trace::SyntheticTraceGenerator(cfg).generate_all();
  for (const auto& p : packets) sim.inject_from_host(p);
  sim.run();
  EXPECT_EQ(sim.stats().injected, packets.size());
  EXPECT_EQ(sim.stats().delivered_regular + sim.stats().dropped, packets.size());
}

TEST_F(FatTreeSimTest, TorSenderAgentValidation) {
  timebase::PerfectClock clock;
  rli::SenderConfig cfg;
  EXPECT_THROW(
      rlir::TorSenderAgent(cfg, &clock, std::vector<NodeId>{topo_.tor(0, 0)}),
      std::invalid_argument);
  EXPECT_THROW(
      rlir::CoreSenderAgent(cfg, &clock, std::vector<NodeId>{topo_.core(0)}),
      std::invalid_argument);
  EXPECT_THROW(rlir::CoreSenderAgent(cfg, nullptr, std::vector<NodeId>{topo_.tor(0, 0)}),
               std::invalid_argument);
}

TEST_F(FatTreeSimTest, TorSenderAgentInjectsPerTargetProbes) {
  FatTreeSim sim(&topo_, FatTreeSimConfig{}, &hasher_);
  timebase::PerfectClock clock;
  rli::SenderConfig cfg;
  cfg.static_gap = 10;
  const std::vector<NodeId> targets = {topo_.core(0), topo_.core(1)};
  rlir::TorSenderAgent agent(cfg, &clock, targets);
  sim.add_agent(topo_.tor(0, 0), &agent);

  for (std::uint64_t i = 0; i < 100; ++i) {
    sim.inject_from_host(host_packet(topo_.tor(0, 0), topo_.tor(3, 0), i,
                                     static_cast<std::int64_t>(i) * 10'000,
                                     static_cast<std::uint16_t>(i)));
  }
  sim.run();
  // 100 packets / gap 10 = 10 rounds x 2 targets.
  EXPECT_EQ(agent.probes_sent(), 20u);
  EXPECT_EQ(sim.stats().delivered_reference, 20u);
}

TEST_F(FatTreeSimTest, CoreSenderAgentPacesPerDestination) {
  FatTreeSim sim(&topo_, FatTreeSimConfig{}, &hasher_);
  timebase::PerfectClock clock;
  rli::SenderConfig cfg;
  cfg.static_gap = 10;
  // Agents at every core so path choice does not matter.
  std::vector<std::unique_ptr<rlir::CoreSenderAgent>> agents;
  const std::vector<NodeId> targets = {topo_.tor(3, 0)};
  for (int c = 0; c < topo_.core_count(); ++c) {
    agents.push_back(std::make_unique<rlir::CoreSenderAgent>(cfg, &clock, targets));
    sim.add_agent(topo_.core(c), agents.back().get());
  }
  for (std::uint64_t i = 0; i < 200; ++i) {
    sim.inject_from_host(host_packet(topo_.tor(0, 0), topo_.tor(3, 0), i,
                                     static_cast<std::int64_t>(i) * 10'000,
                                     static_cast<std::uint16_t>(i)));
  }
  sim.run();
  std::uint64_t probes = 0;
  for (const auto& agent : agents) probes += agent->probes_sent();
  // 200 transit packets / gap 10, distributed over cores: ~20 total probes
  // (each core rounds down its own share).
  EXPECT_GE(probes, 12u);
  EXPECT_LE(probes, 20u);
}

}  // namespace
}  // namespace rlir::topo
