// Unit tests: rlir/localization.h — segment anomaly detection.
#include <gtest/gtest.h>

#include "rlir/localization.h"

namespace rlir::rlir {
namespace {

rli::FlowStatsMap flows_with_means(std::initializer_list<double> means) {
  rli::FlowStatsMap map;
  std::uint16_t port = 1;
  for (const double m : means) {
    net::FiveTuple key;
    key.src_port = port++;
    map[key].add(m);
  }
  return map;
}

TEST(AnomalyLocalizer, SegmentReportStatistics) {
  AnomalyLocalizer localizer;
  localizer.add_segment("seg", flows_with_means({100.0, 200.0, 300.0, 400.0, 500.0}));
  ASSERT_EQ(localizer.segments().size(), 1u);
  const auto& seg = localizer.segments()[0];
  EXPECT_EQ(seg.name, "seg");
  EXPECT_EQ(seg.flows, 5u);
  EXPECT_DOUBLE_EQ(seg.median_flow_delay_ns, 300.0);
  EXPECT_DOUBLE_EQ(seg.mean_flow_delay_ns, 300.0);
  EXPECT_NEAR(seg.p90_flow_delay_ns, 460.0, 1e-9);
}

TEST(AnomalyLocalizer, EmptySegmentIsSafe) {
  AnomalyLocalizer localizer;
  localizer.add_segment("empty", {});
  EXPECT_EQ(localizer.segments()[0].flows, 0u);
  EXPECT_EQ(localizer.baseline_ns(), 0.0);
  const auto findings = localizer.localize();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_FALSE(findings[0].anomalous);
}

TEST(AnomalyLocalizer, BaselineIsMedianOfMedians) {
  AnomalyLocalizer localizer;
  localizer.add_segment("a", flows_with_means({100.0}));
  localizer.add_segment("b", flows_with_means({200.0}));
  localizer.add_segment("c", flows_with_means({10'000.0}));
  EXPECT_DOUBLE_EQ(localizer.baseline_ns(), 200.0);
}

TEST(AnomalyLocalizer, FlagsOnlyTheSlowSegment) {
  AnomalyLocalizer localizer;
  localizer.add_segment("healthy-1", flows_with_means({90.0, 100.0, 110.0}));
  localizer.add_segment("healthy-2", flows_with_means({95.0, 105.0, 115.0}));
  localizer.add_segment("slow", flows_with_means({900.0, 1000.0, 1100.0}));
  localizer.add_segment("healthy-3", flows_with_means({80.0, 100.0, 120.0}));

  const auto findings = localizer.localize(3.0);
  ASSERT_EQ(findings.size(), 4u);
  EXPECT_EQ(findings[0].segment, "slow");
  EXPECT_TRUE(findings[0].anomalous);
  EXPECT_GT(findings[0].score, 5.0);
  for (std::size_t i = 1; i < findings.size(); ++i) {
    EXPECT_FALSE(findings[i].anomalous) << findings[i].segment;
  }
}

TEST(AnomalyLocalizer, FindingsSortedByScore) {
  AnomalyLocalizer localizer;
  localizer.add_segment("low", flows_with_means({100.0}));
  localizer.add_segment("mid", flows_with_means({200.0}));
  localizer.add_segment("high", flows_with_means({400.0}));
  const auto findings = localizer.localize(100.0);
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_EQ(findings[0].segment, "high");
  EXPECT_EQ(findings[1].segment, "mid");
  EXPECT_EQ(findings[2].segment, "low");
  EXPECT_GE(findings[0].score, findings[1].score);
  EXPECT_GE(findings[1].score, findings[2].score);
}

TEST(AnomalyLocalizer, ThresholdIsRespected) {
  AnomalyLocalizer localizer;
  localizer.add_segment("base-1", flows_with_means({100.0}));
  localizer.add_segment("base-2", flows_with_means({100.0}));
  localizer.add_segment("mildly-slow", flows_with_means({250.0}));

  // Score of the slow segment: 250/100 = 2.5.
  EXPECT_FALSE(localizer.localize(3.0).front().anomalous);
  EXPECT_TRUE(localizer.localize(2.0).front().anomalous);
}

TEST(AnomalyLocalizer, MultiPacketFlowsUseTheirMeans) {
  AnomalyLocalizer localizer;
  rli::FlowStatsMap map;
  net::FiveTuple key;
  key.src_port = 1;
  map[key].add(100.0);
  map[key].add(300.0);  // flow mean 200
  localizer.add_segment("seg", map);
  EXPECT_DOUBLE_EQ(localizer.segments()[0].median_flow_delay_ns, 200.0);
}

}  // namespace
}  // namespace rlir::rlir
