// Zero-copy record views: the view decode path and the merge-from-view path
// must be bin-for-bin equivalent to the owning decode + merge path on every
// input the owning path accepts, and must reject every input it rejects with
// the same exception taxonomy (runtime_error = corrupt wire, drop the peer;
// invalid_argument = accuracy mismatch, a deployment bug that must surface).
#include "collect/estimate_record.h"

#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <vector>

#include "collect/concurrent_collector.h"
#include "collect/sharded_collector.h"
#include "common/rng.h"

namespace rlir::collect {
namespace {

net::FiveTuple make_key(std::uint32_t i) {
  net::FiveTuple key;
  key.src = net::Ipv4Address(10, 0, static_cast<std::uint8_t>(i >> 8), static_cast<std::uint8_t>(i));
  key.dst = net::Ipv4Address(192, 168, 1, static_cast<std::uint8_t>(i + 1));
  key.src_port = static_cast<std::uint16_t>(1000 + i);
  key.dst_port = 80;
  key.proto = static_cast<std::uint8_t>(net::IpProto::kTcp);
  return key;
}

std::vector<EstimateRecord> make_batch(std::size_t n, common::LatencySketchConfig sketch_cfg = {}) {
  common::Xoshiro256 rng(23);
  std::vector<EstimateRecord> records;
  for (std::size_t i = 0; i < n; ++i) {
    EstimateRecord r;
    r.key = make_key(static_cast<std::uint32_t>(i % 7));  // repeated keys: merges happen
    r.link = static_cast<LinkId>(i % 3);
    r.sender = static_cast<net::SenderId>(i % 2 + 1);
    r.epoch = static_cast<std::uint32_t>(i / 4);
    r.sketch = common::LatencySketch(sketch_cfg);
    const int observations = static_cast<int>(1 + i * 37 % 300);
    for (int j = 0; j < observations; ++j) r.sketch.add(rng.lognormal(9.0, 2.0));
    if (i % 5 == 0) r.sketch.add(0.0);  // exercise the zero bin
    records.push_back(std::move(r));
  }
  return records;
}

void expect_same_sketch(const common::LatencySketch& a, const common::LatencySketch& b) {
  EXPECT_EQ(a.bins(), b.bins());
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.zero_count(), b.zero_count());
  EXPECT_EQ(a.sum(), b.sum());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
}

TEST(RecordViewTest, ViewDecodeMatchesOwningDecode) {
  const auto batch = make_batch(12);
  const auto bytes = encode_records(batch);

  const auto owned = decode_records_prefix(bytes.data(), bytes.size());
  std::vector<RecordView> views;
  const std::size_t consumed = decode_record_views_prefix(bytes.data(), bytes.size(), views);

  EXPECT_EQ(consumed, owned.bytes_consumed);
  ASSERT_EQ(views.size(), owned.records.size());
  for (std::size_t i = 0; i < views.size(); ++i) {
    const auto& v = views[i];
    const auto& o = owned.records[i];
    EXPECT_EQ(v.key, o.key);
    EXPECT_EQ(v.link, o.link);
    EXPECT_EQ(v.sender, o.sender);
    EXPECT_EQ(v.epoch, o.epoch);
    EXPECT_EQ(v.sketch.relative_accuracy, o.sketch.config().relative_accuracy);
    EXPECT_EQ(v.sketch.zero_count, o.sketch.zero_count());
    EXPECT_EQ(v.sketch.count(), o.sketch.count());

    // Merging the view into a fresh sketch must equal merging the
    // materialized sketch — bin for bin.
    common::LatencySketch from_view{{}}, from_owned{{}};
    merge_sketch_view(from_view, v.sketch);
    from_owned.merge(o.sketch);
    expect_same_sketch(from_view, from_owned);
  }
}

TEST(RecordViewTest, ViewDecodeAppendsAcrossCoalescedBatches) {
  // Two back-to-back batches, as the client's coalescing produces: the view
  // decoder consumes exactly one per call and appends without clearing.
  const auto batch_a = make_batch(3);
  const auto batch_b = make_batch(5);
  auto bytes = encode_records(batch_a);
  const auto more = encode_records(batch_b);
  bytes.insert(bytes.end(), more.begin(), more.end());

  std::vector<RecordView> views;
  const std::size_t first = decode_record_views_prefix(bytes.data(), bytes.size(), views);
  EXPECT_EQ(views.size(), batch_a.size());
  const std::size_t second =
      decode_record_views_prefix(bytes.data() + first, bytes.size() - first, views);
  EXPECT_EQ(first + second, bytes.size());
  ASSERT_EQ(views.size(), batch_a.size() + batch_b.size());
  EXPECT_EQ(views[batch_a.size()].key, batch_b[0].key);
}

TEST(RecordViewTest, CollectorViewIngestMatchesOwningIngest) {
  const auto batch = make_batch(40);
  const auto bytes = encode_records(batch);
  std::vector<RecordView> views;
  decode_record_views_prefix(bytes.data(), bytes.size(), views);
  ASSERT_EQ(views.size(), batch.size());

  ShardedCollector from_records{{}};
  ShardedCollector from_views{{}};
  from_records.ingest(batch);
  for (const auto& v : views) from_views.ingest(v);

  EXPECT_EQ(from_views.flow_count(), from_records.flow_count());
  EXPECT_EQ(from_views.records_ingested(), from_records.records_ingested());
  EXPECT_EQ(from_views.estimates_ingested(), from_records.estimates_ingested());
  EXPECT_EQ(from_views.epoch_count(), from_records.epoch_count());
  EXPECT_EQ(from_views.links(), from_records.links());
  for (const auto& r : batch) {
    const auto* a = from_views.flow(r.key);
    const auto* b = from_records.flow(r.key);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    expect_same_sketch(*a, *b);
  }
  for (const LinkId link : from_records.links()) {
    expect_same_sketch(*from_views.link_distribution(link), *from_records.link_distribution(link));
  }
  // The rank indexes agree too: top-k at the indexed quantile is identical.
  const auto top_a = from_views.top_k_flows(5);
  const auto top_b = from_records.top_k_flows(5);
  ASSERT_EQ(top_a.size(), top_b.size());
  for (std::size_t i = 0; i < top_a.size(); ++i) {
    EXPECT_EQ(top_a[i].key, top_b[i].key);
    EXPECT_EQ(top_a[i].p99_ns, top_b[i].p99_ns);
  }
}

TEST(RecordViewTest, ConcurrentSubmitViewsMatchesSubmit) {
  const auto batch = make_batch(30);
  const auto bytes = encode_records(batch);
  std::vector<RecordView> views;
  decode_record_views_prefix(bytes.data(), bytes.size(), views);

  ConcurrentCollectorConfig cfg;
  cfg.shard_count = 4;
  ConcurrentShardedCollector from_records(cfg);
  ConcurrentShardedCollector from_views(cfg);
  for (const auto& r : batch) from_records.submit(r);
  from_views.submit_views(views);

  from_records.quiesce();
  from_views.quiesce();
  for (const auto& r : batch) {
    const auto a = from_views.flow_summary(r.key);
    const auto b = from_records.flow_summary(r.key);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(a->packets, b->packets);
    EXPECT_EQ(a->p99_ns, b->p99_ns);
    EXPECT_EQ(a->max_ns, b->max_ns);
  }
}

TEST(RecordViewTest, DuplicateWireBinsAccumulateLikeOwningPath) {
  // Hand-patch an encoded record so two wire bins carry the same index; both
  // decoders must sum them (the owning path's BinMap += behavior).
  auto batch = make_batch(1);
  // Guarantee at least 2 bins with controlled values.
  batch[0].sketch = common::LatencySketch(common::LatencySketchConfig{});
  batch[0].sketch.add(1000.0);
  batch[0].sketch.add(2000.0);
  auto bytes = encode_records(batch);
  // Wire layout: 16-byte batch header, 23-byte keyed fields, sketch = f64
  // accuracy + u32 max_bins + u64 zero + f64 sum/min/max + u32 bin_count,
  // then (i32 index, u64 count) pairs.
  const std::size_t bins_start = 16 + 23 + 8 + 4 + 8 + 8 + 8 + 8 + 4;
  ASSERT_GE(bytes.size(), bins_start + 2 * 12);
  // Overwrite the second bin's index with the first's.
  std::memcpy(bytes.data() + bins_start + 12, bytes.data() + bins_start, 4);

  const auto owned = decode_records_prefix(bytes.data(), bytes.size());
  std::vector<RecordView> views;
  decode_record_views_prefix(bytes.data(), bytes.size(), views);
  ASSERT_EQ(views.size(), 1u);

  common::LatencySketch from_view{{}}, from_owned{{}};
  merge_sketch_view(from_view, views[0].sketch);
  from_owned.merge(owned.records[0].sketch);
  expect_same_sketch(from_view, from_owned);
  EXPECT_EQ(from_view.bins().size(), 1u);  // the duplicate collapsed into one bin
}

TEST(RecordViewTest, WireBinCountOverBudgetCollapsesLikeOwningPath) {
  // Patch the record's max_bins below its bin_count: the owning path
  // materializes via from_parts (which collapses before the merge); the view
  // path must detect the over-budget wire sketch and reproduce that exactly.
  common::LatencySketchConfig wide{0.01, 2048};
  auto batch = make_batch(1, wide);
  batch[0].sketch = common::LatencySketch(wide);
  common::Xoshiro256 rng(5);
  for (int i = 0; i < 5000; ++i) batch[0].sketch.add(rng.lognormal(9.0, 3.0));
  const std::uint32_t bins = static_cast<std::uint32_t>(batch[0].sketch.bins().size());
  ASSERT_GT(bins, 8u);
  auto bytes = encode_records(batch);
  const std::size_t max_bins_off = 16 + 23 + 8;
  const std::uint32_t shrunk = 8;
  std::memcpy(bytes.data() + max_bins_off, &shrunk, 4);

  const auto owned = decode_records_prefix(bytes.data(), bytes.size());
  std::vector<RecordView> views;
  decode_record_views_prefix(bytes.data(), bytes.size(), views);
  ASSERT_EQ(views.size(), 1u);
  EXPECT_GT(views[0].sketch.bin_count, views[0].sketch.max_bins);

  common::LatencySketch from_view{wide}, from_owned{wide};
  merge_sketch_view(from_view, views[0].sketch);
  from_owned.merge(owned.records[0].sketch);
  expect_same_sketch(from_view, from_owned);
}

TEST(RecordViewTest, EmptySketchMergeIsANoOp) {
  auto batch = make_batch(1);
  batch[0].sketch = common::LatencySketch(common::LatencySketchConfig{});  // zero observations
  const auto bytes = encode_records(batch);
  std::vector<RecordView> views;
  decode_record_views_prefix(bytes.data(), bytes.size(), views);
  ASSERT_EQ(views.size(), 1u);

  common::LatencySketch dst{{}};
  dst.add(500.0);
  const auto before_min = dst.min();
  merge_sketch_view(dst, views[0].sketch);
  // merge() ignores an empty other entirely (its min/max are sentinels);
  // the view path must too.
  EXPECT_EQ(dst.count(), 1u);
  EXPECT_EQ(dst.min(), before_min);
}

TEST(RecordViewTest, TruncatedBinsRejectedAsRuntimeError) {
  const auto batch = make_batch(1);
  const auto bytes = encode_records(batch);
  for (const std::size_t cut : {bytes.size() - 1, bytes.size() - 11, std::size_t{20}}) {
    std::vector<RecordView> views;
    EXPECT_THROW(decode_record_views_prefix(bytes.data(), cut, views), std::runtime_error)
        << "cut=" << cut;
  }
}

TEST(RecordViewTest, CorruptAccuracyRejectedAsRuntimeError) {
  // An out-of-range relative accuracy is wire corruption (the owning path
  // throws from sketch construction): runtime_error, not invalid_argument,
  // so the agent drops the peer instead of crashing the poll loop.
  auto batch = make_batch(1);
  auto bytes = encode_records(batch);
  const double bad = 1.5;
  std::memcpy(bytes.data() + 16 + 23, &bad, 8);
  std::vector<RecordView> views;
  try {
    decode_record_views_prefix(bytes.data(), bytes.size(), views);
    FAIL() << "expected runtime_error";
  } catch (const std::invalid_argument&) {
    FAIL() << "invalid_argument would escape the agent's drop-the-peer handling";
  } catch (const std::runtime_error&) {
    // expected
  }
}

TEST(RecordViewTest, AccuracyMismatchThrowsInvalidArgument) {
  common::LatencySketchConfig other{0.02, 2048};
  auto batch = make_batch(1, other);
  const auto bytes = encode_records(batch);
  std::vector<RecordView> views;
  decode_record_views_prefix(bytes.data(), bytes.size(), views);
  ASSERT_EQ(views.size(), 1u);

  common::LatencySketch dst{{}};  // default 0.01 accuracy
  EXPECT_THROW(merge_sketch_view(dst, views[0].sketch), std::invalid_argument);
  ShardedCollector collector{{}};
  EXPECT_THROW(collector.ingest(views[0]), std::invalid_argument);
}

}  // namespace
}  // namespace rlir::collect
