// Unit tests: sim/event_queue.h — discrete-event scheduler.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"

namespace rlir::sim {
namespace {

using timebase::Duration;
using timebase::TimePoint;

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(TimePoint(30), [&] { order.push_back(3); });
  q.schedule(TimePoint(10), [&] { order.push_back(1); });
  q.schedule(TimePoint(20), [&] { order.push_back(2); });
  q.run_until_empty();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.executed(), 3u);
}

TEST(EventQueue, FifoTieBreakAtEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(TimePoint(5), [&order, i] { order.push_back(i); });
  }
  q.run_until_empty();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NowAdvancesWithEvents) {
  EventQueue q;
  EXPECT_EQ(q.now(), TimePoint::zero());
  q.schedule(TimePoint(100), [&] { EXPECT_EQ(q.now(), TimePoint(100)); });
  q.run_until_empty();
  EXPECT_EQ(q.now(), TimePoint(100));
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue q;
  TimePoint fired;
  q.schedule(TimePoint(50), [&] {
    q.schedule_in(Duration(25), [&] { fired = q.now(); });
  });
  q.run_until_empty();
  EXPECT_EQ(fired, TimePoint(75));
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) q.schedule_in(Duration(10), chain);
  };
  q.schedule(TimePoint(0), chain);
  q.run_until_empty();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(q.now(), TimePoint(40));
}

TEST(EventQueue, SchedulingInThePastThrows) {
  EventQueue q;
  q.schedule(TimePoint(100), [&] {
    EXPECT_THROW(q.schedule(TimePoint(50), [] {}), std::logic_error);
  });
  q.run_until_empty();
}

TEST(EventQueue, RunNextReturnsFalseWhenEmpty) {
  EventQueue q;
  EXPECT_FALSE(q.run_next());
  q.schedule(TimePoint(1), [] {});
  EXPECT_TRUE(q.run_next());
  EXPECT_FALSE(q.run_next());
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(TimePoint(10), [&] { fired.push_back(10); });
  q.schedule(TimePoint(20), [&] { fired.push_back(20); });
  q.schedule(TimePoint(30), [&] { fired.push_back(30); });

  q.run_until(TimePoint(20));
  EXPECT_EQ(fired, (std::vector<int>{10, 20}));
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.now(), TimePoint(20));

  q.run_until_empty();
  EXPECT_EQ(fired.size(), 3u);
}

TEST(EventQueue, RunUntilAdvancesClockOnIdle) {
  EventQueue q;
  q.run_until(TimePoint(500));
  EXPECT_EQ(q.now(), TimePoint(500));
}

TEST(EventQueue, PendingCount) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  q.schedule(TimePoint(1), [] {});
  q.schedule(TimePoint(2), [] {});
  EXPECT_EQ(q.pending(), 2u);
  EXPECT_FALSE(q.empty());
}

TEST(EventQueue, StressManyEventsStayOrdered) {
  EventQueue q;
  TimePoint last = TimePoint::zero();
  bool ordered = true;
  // Pseudo-random times, inserted out of order.
  std::uint64_t x = 88172645463325252ULL;
  for (int i = 0; i < 20'000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const TimePoint t(static_cast<std::int64_t>(x % 1'000'000));
    q.schedule(t, [&, t] {
      ordered = ordered && t >= last;
      last = t;
    });
  }
  q.run_until_empty();
  EXPECT_TRUE(ordered);
  EXPECT_EQ(q.executed(), 20'000u);
}

}  // namespace
}  // namespace rlir::sim
