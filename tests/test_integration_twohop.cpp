// End-to-end integration tests of the Figure-3 pipeline: synthetic traffic,
// RLI sender/receiver, cross traffic, ground truth comparison.
#include <gtest/gtest.h>

#include "rli/flow_stats.h"
#include "rli/receiver.h"
#include "rli/sender.h"
#include "sim/cross_traffic.h"
#include "sim/pipeline.h"
#include "timebase/clock.h"
#include "trace/synthetic.h"

namespace rlir {
namespace {

using timebase::Duration;

trace::SyntheticConfig regular_config(Duration duration, double offered_bps,
                                      std::uint64_t seed) {
  trace::SyntheticConfig cfg;
  cfg.duration = duration;
  cfg.offered_bps = offered_bps;
  cfg.seed = seed;
  cfg.src_pool = net::Ipv4Prefix(net::Ipv4Address(10, 0, 0, 0), 16);
  return cfg;
}

trace::SyntheticConfig cross_config(Duration duration, double offered_bps,
                                    std::uint64_t seed) {
  trace::SyntheticConfig cfg;
  cfg.duration = duration;
  cfg.offered_bps = offered_bps;
  cfg.seed = seed;
  cfg.kind = net::PacketKind::kCross;
  cfg.src_pool = net::Ipv4Prefix(net::Ipv4Address(172, 16, 0, 0), 16);
  cfg.first_seq = 1'000'000'000;
  return cfg;
}

struct RunOutput {
  sim::PipelineResult pipeline;
  rli::AccuracyReport report;
  std::uint64_t refs_injected = 0;
};

RunOutput run_rli(double cross_util_target, rli::InjectionScheme scheme,
                  sim::CrossModel model = sim::CrossModel::kUniform) {
  const Duration duration = Duration::milliseconds(300);
  const double link_bps = 10e9;

  auto regular = trace::SyntheticTraceGenerator(
                     regular_config(duration, 0.22 * link_bps, 42))
                     .generate_all();
  auto cross = trace::SyntheticTraceGenerator(
                   cross_config(duration, 0.80 * link_bps, 7))
                   .generate_all();

  std::uint64_t regular_bytes = 0;
  for (const auto& p : regular) regular_bytes += p.size_bytes;
  std::uint64_t cross_bytes = 0;
  for (const auto& p : cross) cross_bytes += p.size_bytes;

  sim::CrossTrafficConfig cross_cfg;
  cross_cfg.model = model;
  cross_cfg.burst_on = Duration::milliseconds(50);
  cross_cfg.burst_off = Duration::milliseconds(50);
  double p = sim::selection_for_utilization(cross_util_target, link_bps, duration,
                                            regular_bytes, cross_bytes);
  if (model == sim::CrossModel::kBursty) p = std::min(1.0, p * 2.0);  // duty cycle 0.5
  cross_cfg.selection_probability = p;
  sim::CrossTrafficInjector injector(cross_cfg);

  timebase::PerfectClock clock;
  rli::SenderConfig sender_cfg;
  sender_cfg.scheme = scheme;
  rli::RliSender sender(sender_cfg, &clock);

  rli::ReceiverConfig recv_cfg;
  rli::RliReceiver receiver(recv_cfg, &clock);
  rli::GroundTruthTap truth;

  sim::TwoHopPipeline pipeline(sim::PipelineConfig{});
  pipeline.set_reference_injector(&sender);
  pipeline.set_cross_injector(&injector);
  pipeline.add_egress_tap(&receiver);
  pipeline.add_egress_tap(&truth);

  RunOutput out;
  out.pipeline = pipeline.run(regular, cross);
  out.report = rli::AccuracyReport::compare(truth.per_flow(), receiver.per_flow());
  out.refs_injected = sender.references_injected();
  return out;
}

TEST(TwoHopIntegration, TrafficFlowsEndToEnd) {
  const auto out = run_rli(0.67, rli::InjectionScheme::kStatic);
  EXPECT_GT(out.pipeline.regular_offered, 10'000u);
  EXPECT_GT(out.pipeline.regular_delivered, 0u);
  EXPECT_GT(out.pipeline.cross_delivered, 0u);
  EXPECT_GT(out.refs_injected, 0u);
  // Static 1-and-100: one reference per 100 regular packets.
  EXPECT_NEAR(static_cast<double>(out.refs_injected),
              static_cast<double>(out.pipeline.regular_offered) / 100.0, 2.0);
}

TEST(TwoHopIntegration, BottleneckUtilizationIsCalibrated) {
  const auto out = run_rli(0.67, rli::InjectionScheme::kStatic);
  EXPECT_NEAR(out.pipeline.bottleneck_utilization(), 0.67, 0.08);
}

TEST(TwoHopIntegration, EstimatesTrackTruthAtHighUtilization) {
  const auto out = run_rli(0.93, rli::InjectionScheme::kAdaptive);
  ASSERT_GT(out.report.flow_count(), 100u);
  // At high utilization delays are large and delay locality strong; the
  // paper reports ~4.5% median relative error. Allow generous slack.
  EXPECT_LT(out.report.median_mean_error(), 0.30);
}

TEST(TwoHopIntegration, AccuracyImprovesWithUtilization) {
  const auto lo = run_rli(0.67, rli::InjectionScheme::kAdaptive);
  const auto hi = run_rli(0.93, rli::InjectionScheme::kAdaptive);
  ASSERT_GT(lo.report.flow_count(), 100u);
  ASSERT_GT(hi.report.flow_count(), 100u);
  // Figure 4(a): relative error shrinks as the bottleneck heats up.
  EXPECT_LT(hi.report.median_mean_error(), lo.report.median_mean_error());
}

TEST(TwoHopIntegration, AdaptiveBeatsStaticAtHighUtilization) {
  const auto adaptive = run_rli(0.93, rli::InjectionScheme::kAdaptive);
  const auto fixed = run_rli(0.93, rli::InjectionScheme::kStatic);
  // Adaptive injects 10x more references (1-and-10 vs 1-and-100) and should
  // estimate at least as well.
  EXPECT_GT(adaptive.refs_injected, fixed.refs_injected * 5);
  EXPECT_LE(adaptive.report.median_mean_error(), fixed.report.median_mean_error() * 1.1);
}

}  // namespace
}  // namespace rlir
