// The observability tier's acceptance bar, end to end: a 4-agent
// partitioned fleet runs the standard workload, one agent is killed
// mid-stream, and the coordinator's kMetrics fan-out must deliver
//
//   (a) per-agent scrapes for every survivor (nullopt for the victim);
//   (b) a merged fleet scrape that IS the sum/union of the per-agent
//       scrapes — counters summed exactly, histograms unioned bin-for-bin,
//       event counts summed — and whose ingest totals match the agents'
//       ground truth;
//   (c) the fault visible in the event traces: the partitioned client's
//       shared trace carries the kDisconnect and kRebalance the kill
//       caused, and every surviving agent's trace carries its connects.
//
// Plus the AgentStats field-table regression: every field round-trips
// through the kStats wire codec, merge_agent_stats, and the scrape
// exposition — driven by kAgentStatsFields so a new field cannot dodge any
// of the three.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fault_stream.h"
#include "fleet_workload.h"
#include "obs/metrics.h"
#include "obs/wire.h"
#include "transport/agent.h"
#include "transport/coordinator.h"
#include "transport/messages.h"
#include "transport/partitioned_client.h"

namespace rlir {
namespace {

using transport::testutil::FaultPlan;
using transport::testutil::FaultyByteStream;

constexpr std::size_t kAgents = 4;
constexpr std::size_t kVictim = 2;

struct KillableFleet {
  KillableFleet() : alive(kAgents, true), conns(kAgents, nullptr) {
    transport::CollectorAgentConfig cfg;
    cfg.collector.shard_count = testutil::kWorkloadShards;
    for (std::size_t i = 0; i < kAgents; ++i) {
      agents.push_back(std::make_unique<transport::CollectorAgent>(cfg));
    }
  }

  transport::CollectorClient::StreamFactory factory(std::size_t i) {
    return [this, i]() -> std::unique_ptr<transport::ByteStream> {
      if (!alive[i]) return nullptr;
      auto [client_end, agent_end] = transport::make_loopback();
      agents[i]->add_connection(std::move(agent_end));
      auto wrapped = std::make_unique<FaultyByteStream>(std::move(client_end), FaultPlan{});
      conns[i] = wrapped.get();
      return wrapped;
    };
  }

  void kill(std::size_t i) {
    alive[i] = false;
    conns[i]->cut_now();
  }

  void poll_all() {
    for (std::size_t i = 0; i < kAgents; ++i) {
      if (alive[i]) agents[i]->poll();
    }
  }

  std::vector<std::unique_ptr<transport::CollectorAgent>> agents;
  std::vector<bool> alive;
  std::vector<FaultyByteStream*> conns;
};

/// Identity key for hand-rolled merge verification.
std::string sample_key(const obs::MetricSample& s) {
  std::string key = s.name;
  for (const auto& [k, v] : s.labels) key += "|" + k + "=" + v;
  return key;
}

TEST(ObsFleetE2E, MergedFleetScrapeIsSumOfPerAgentScrapesUnderAgentKill) {
  KillableFleet fleet;
  transport::PartitionedClientConfig cfg;
  cfg.down_after_pumps = 2;
  transport::PartitionedClient pc(cfg);
  for (std::size_t i = 0; i < kAgents; ++i) pc.add_endpoint(fleet.factory(i));
  pc.pump();

  int steps = 0;
  bool killed = false;
  testutil::run_fleet_workload({pc.make_sink()}, [&] {
    pc.pump();
    fleet.poll_all();
    if (!killed && ++steps == 12) {
      for (int i = 0; i < 200 && !pc.drain(8); ++i) fleet.poll_all();
      fleet.poll_all();
      fleet.kill(kVictim);
      killed = true;
    }
  });
  ASSERT_TRUE(killed);
  for (int i = 0; i < 200 && !pc.drain(8); ++i) fleet.poll_all();
  fleet.poll_all();
  ASSERT_FALSE(pc.endpoint_healthy(kVictim));

  // (c) The fault left its trail in the shared client-side trace: the
  // endpoint client recorded the disconnect, the partitioned tier the
  // rebalance that moved the victim's slots.
  const auto pc_events = pc.events().snapshot();
  EXPECT_GE(pc_events.count(obs::EventKind::kDisconnect), 1u);
  EXPECT_EQ(pc_events.count(obs::EventKind::kRebalance), 1u);
  bool saw_victim_rebalance = false;
  for (const auto& ev : pc_events.events) {
    if (ev.kind == obs::EventKind::kRebalance) {
      saw_victim_rebalance = ev.detail == "ep" + std::to_string(kVictim);
      EXPECT_EQ(ev.value, pc.slot_count() / kAgents);  // exactly its home slots
    }
  }
  EXPECT_TRUE(saw_victim_rebalance);
  // The client-side registry agrees with the Stats view over it.
  EXPECT_EQ(pc.stats().rebalances, 1u);

  // --- The scrape: one kMetrics fan-out through the coordinator.
  transport::QueryCoordinatorConfig qcfg;
  qcfg.reply_rounds = 64;
  transport::QueryCoordinator coord(qcfg);
  for (std::size_t i = 0; i < kAgents; ++i) coord.add_agent(fleet.factory(i));
  coord.set_drive([&fleet] { fleet.poll_all(); });

  const auto per_agent = coord.per_agent_scrapes();
  ASSERT_EQ(per_agent.size(), kAgents);
  std::vector<obs::Scrape> answered;
  for (std::size_t i = 0; i < kAgents; ++i) {
    if (i == kVictim) {
      EXPECT_FALSE(per_agent[i].has_value()) << "dead agent answered a scrape";
    } else {
      ASSERT_TRUE(per_agent[i].has_value()) << "survivor " << i << " missed the scrape";
      answered.push_back(*per_agent[i]);
    }
  }
  const auto merged = transport::merge_scrapes(answered);

  // (b) Hand-rolled sum/union over the per-agent scrapes — the oracle the
  // production merge must match exactly.
  std::map<std::string, const obs::MetricSample*> expect_first;
  std::map<std::string, std::uint64_t> expect_counter;
  std::map<std::string, std::int64_t> expect_gauge;
  std::map<std::string, common::LatencySketch> expect_hist;
  for (const auto& scrape : answered) {
    for (const auto& s : scrape.metrics.samples) {
      const auto key = sample_key(s);
      expect_first.try_emplace(key, &s);
      switch (s.kind) {
        case obs::MetricKind::kCounter:
          expect_counter[key] += s.counter;
          break;
        case obs::MetricKind::kGauge: {
          auto [it, inserted] = expect_gauge.try_emplace(key, s.gauge);
          if (!inserted && s.gauge > it->second) it->second = s.gauge;
          break;
        }
        case obs::MetricKind::kHistogram: {
          auto [it, inserted] = expect_hist.try_emplace(key, s.histogram.config());
          it->second.merge(s.histogram);
          break;
        }
      }
    }
  }
  ASSERT_EQ(merged.metrics.samples.size(), expect_first.size());
  for (const auto& s : merged.metrics.samples) {
    const auto key = sample_key(s);
    ASSERT_TRUE(expect_first.count(key)) << "merge invented series " << key;
    switch (s.kind) {
      case obs::MetricKind::kCounter:
        EXPECT_EQ(s.counter, expect_counter.at(key)) << key;
        break;
      case obs::MetricKind::kGauge:
        EXPECT_EQ(s.gauge, expect_gauge.at(key)) << key;
        break;
      case obs::MetricKind::kHistogram:
        // Bin-for-bin: the union is exact, like every sketch merge.
        EXPECT_EQ(s.histogram.bins(), expect_hist.at(key).bins()) << key;
        EXPECT_EQ(s.histogram.zero_count(), expect_hist.at(key).zero_count()) << key;
        break;
    }
  }
  // Event counts summed element-wise across the survivors.
  for (std::size_t k = 0; k < obs::kEventKindCount; ++k) {
    std::uint64_t want = 0;
    for (const auto& scrape : answered) want += scrape.events.counts[k];
    EXPECT_EQ(merged.events.counts[k], want);
  }

  // The merged scrape's ingest totals match the survivors' ground truth —
  // the scrape plane agrees with the query plane and the agents themselves.
  std::uint64_t want_records = 0;
  std::uint64_t want_estimates = 0;
  for (std::size_t i = 0; i < kAgents; ++i) {
    if (i == kVictim) continue;
    want_records += fleet.agents[i]->stats().records_ingested;
    want_estimates += fleet.agents[i]->stats().estimates_ingested;
  }
  std::uint64_t got_records = 0;
  std::uint64_t got_estimates = 0;
  std::uint64_t got_connects = 0;
  for (const auto& s : merged.metrics.samples) {
    if (s.name == "rlir_agent_records_ingested_total") got_records += s.counter;
    if (s.name == "rlir_agent_estimates_ingested_total") got_estimates += s.counter;
    if (s.name == "rlir_agent_connections_accepted_total") got_connects += s.counter;
  }
  EXPECT_EQ(got_records, want_records);
  EXPECT_EQ(got_estimates, want_estimates);
  EXPECT_GT(got_connects, 0u);

  // (c) continued: every surviving agent's own trace saw its connections.
  for (const auto& scrape : answered) {
    EXPECT_GE(scrape.events.count(obs::EventKind::kConnect), 1u);
  }

  // fleet_metrics() is the same merge driven by its own fan-out.
  const auto fleet_scrape = coord.fleet_metrics();
  std::uint64_t fleet_records = 0;
  for (const auto& s : fleet_scrape.metrics.samples) {
    if (s.name == "rlir_agent_records_ingested_total") fleet_records += s.counter;
  }
  EXPECT_EQ(fleet_records, want_records);
}

TEST(AgentStatsFieldTable, EveryFieldRoundTripsThroughMergeWireAndScrape) {
  // Distinct sentinels per field, assigned through the table itself.
  transport::AgentStats a;
  transport::AgentStats b;
  for (std::size_t i = 0; i < transport::kAgentStatsFieldCount; ++i) {
    a.*(transport::kAgentStatsFields[i].member) = 100 + i;
    b.*(transport::kAgentStatsFields[i].member) = 1000 * (i + 1);
  }

  // merge_agent_stats: field-wise sum, no field skipped or crossed.
  const auto merged = transport::merge_agent_stats({a, b});
  for (std::size_t i = 0; i < transport::kAgentStatsFieldCount; ++i) {
    EXPECT_EQ(merged.*(transport::kAgentStatsFields[i].member), 100 + i + 1000 * (i + 1))
        << transport::kAgentStatsFields[i].name;
  }

  // kStats wire codec: every field survives encode/decode.
  transport::QueryReply reply;
  reply.kind = transport::QueryKind::kStats;
  reply.stats = a;
  const auto bytes = transport::encode_reply(reply);
  const auto decoded = transport::decode_reply(bytes.data(), bytes.size());
  for (std::size_t i = 0; i < transport::kAgentStatsFieldCount; ++i) {
    EXPECT_EQ(decoded.stats.*(transport::kAgentStatsFields[i].member), 100 + i)
        << transport::kAgentStatsFields[i].name;
  }

  // Scrape exposition: one rlir_agent_<field>_total counter per field.
  obs::MetricsSnapshot snap;
  transport::append_agent_stats(snap, a, {{"instance", "a7"}});
  ASSERT_EQ(snap.samples.size(), transport::kAgentStatsFieldCount);
  for (std::size_t i = 0; i < transport::kAgentStatsFieldCount; ++i) {
    bool found = false;
    const std::string want_name =
        std::string("rlir_agent_") + transport::kAgentStatsFields[i].name + "_total";
    for (const auto& s : snap.samples) {
      if (s.name != want_name) continue;
      found = true;
      EXPECT_EQ(s.counter, 100 + i) << want_name;
      ASSERT_EQ(s.labels.size(), 1u);
      EXPECT_EQ(s.labels[0].second, "a7");
    }
    EXPECT_TRUE(found) << want_name << " missing from the scrape";
  }
}

TEST(AgentStatsFieldTable, MergeSaturatesEveryField) {
  constexpr std::uint64_t kMax = ~std::uint64_t{0};
  transport::AgentStats a;
  transport::AgentStats b;
  for (const auto& field : transport::kAgentStatsFields) {
    a.*(field.member) = kMax - 1;
    b.*(field.member) = 7;
  }
  const auto merged = transport::merge_agent_stats({a, b});
  for (const auto& field : transport::kAgentStatsFields) {
    EXPECT_EQ(merged.*(field.member), kMax) << field.name;
  }
}

}  // namespace
}  // namespace rlir
