// Exposition writers and the scrape wire codec: golden-file checks for the
// Prometheus text and JSON formats (label escaping and ordering, histogram
// bucket layout), bucket monotonicity as a property, and byte-exact wire
// round-trips including truncation rejection.
#include "obs/exposition.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "obs/event_trace.h"
#include "obs/metrics.h"
#include "obs/wire.h"

namespace rlir::obs {
namespace {

TEST(PrometheusText, CounterAndGaugeGolden) {
  MetricsRegistry r;
  r.counter("rlir_client_reconnects_total", {{"instance", "ep1"}})->add(3);
  r.counter("rlir_client_reconnects_total", {{"instance", "ep0"}})->add(1);
  r.gauge("rlir_agent_connections")->set(2);
  const std::string expected =
      "# TYPE rlir_agent_connections gauge\n"
      "rlir_agent_connections 2\n"
      "# TYPE rlir_client_reconnects_total counter\n"
      "rlir_client_reconnects_total{instance=\"ep0\"} 1\n"
      "rlir_client_reconnects_total{instance=\"ep1\"} 3\n";
  EXPECT_EQ(to_prometheus(r.snapshot()), expected);
}

TEST(PrometheusText, LabelValuesEscaped) {
  MetricsSnapshot snap;
  append_counter(snap, "rlir_x_total", {{"path", "a\\b\"c\nd"}}, 1);
  EXPECT_EQ(to_prometheus(snap),
            "# TYPE rlir_x_total counter\n"
            "rlir_x_total{path=\"a\\\\b\\\"c\\nd\"} 1\n");
}

TEST(PrometheusText, LabelsSortedByKey) {
  MetricsSnapshot snap;
  append_counter(snap, "rlir_x_total", {{"zeta", "1"}, {"alpha", "2"}}, 9);
  EXPECT_EQ(to_prometheus(snap),
            "# TYPE rlir_x_total counter\n"
            "rlir_x_total{alpha=\"2\",zeta=\"1\"} 9\n");
}

TEST(PrometheusText, ZeroOnlyHistogramGolden) {
  // All-zero observations make the bucket layout exactly predictable: the
  // zero bin is the le="0" bucket and no sketch bins exist.
  MetricsRegistry r;
  Histogram* h = r.histogram("rlir_h", {{"lane", "0"}});
  h->observe(0.0);
  h->observe(0.0);
  h->observe(0.0);
  const std::string expected =
      "# TYPE rlir_h histogram\n"
      "rlir_h_bucket{lane=\"0\",le=\"0\"} 3\n"
      "rlir_h_bucket{lane=\"0\",le=\"+Inf\"} 3\n"
      "rlir_h_sum{lane=\"0\"} 0\n"
      "rlir_h_count{lane=\"0\"} 3\n";
  EXPECT_EQ(to_prometheus(r.snapshot()), expected);
}

/// Parses "<name>_bucket{...le=\"<v>\"} <count>" lines in order.
std::vector<std::pair<double, std::uint64_t>> parse_buckets(const std::string& text,
                                                            const std::string& name) {
  std::vector<std::pair<double, std::uint64_t>> buckets;
  const std::string prefix = name + "_bucket{";
  std::size_t pos = 0;
  while ((pos = text.find(prefix, pos)) != std::string::npos) {
    const std::size_t le = text.find("le=\"", pos) + 4;
    const std::size_t le_end = text.find('"', le);
    const std::string le_text = text.substr(le, le_end - le);
    const std::size_t sp = text.find(' ', le_end);
    const std::size_t nl = text.find('\n', sp);
    buckets.emplace_back(
        le_text == "+Inf" ? std::numeric_limits<double>::infinity() : std::stod(le_text),
        std::stoull(text.substr(sp + 1, nl - sp - 1)));
    pos = nl;
  }
  return buckets;
}

TEST(PrometheusText, HistogramBucketsCumulativeAndMonotone) {
  MetricsRegistry r;
  Histogram* h = r.histogram("rlir_lat");
  for (int i = 1; i <= 200; ++i) h->observe(1e3 * i * i);
  h->observe(0.0);
  const auto text = to_prometheus(r.snapshot());
  const auto buckets = parse_buckets(text, "rlir_lat");
  ASSERT_GE(buckets.size(), 3u);
  for (std::size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_GT(buckets[i].first, buckets[i - 1].first) << "le bounds must ascend";
    EXPECT_GE(buckets[i].second, buckets[i - 1].second) << "counts must be cumulative";
  }
  EXPECT_EQ(buckets.front().second, 1u);  // the le="0" zero bin
  EXPECT_EQ(buckets.back().second, 201u); // +Inf == count
}

TEST(JsonExposition, CounterGolden) {
  MetricsSnapshot snap;
  append_counter(snap, "rlir_x_total", {{"instance", "a"}}, 7);
  EXPECT_EQ(to_json(snap),
            "{\"metrics\":[{\"kind\":\"counter\",\"name\":\"rlir_x_total\","
            "\"labels\":{\"instance\":\"a\"},\"value\":7}]}");
}

TEST(JsonExposition, ControlCharactersEscaped) {
  MetricsSnapshot snap;
  append_counter(snap, "rlir_x_total", {{"k", std::string("a\x01\tb")}}, 1);
  const auto json = to_json(snap);
  EXPECT_NE(json.find("a\\u0001\\tb"), std::string::npos) << json;
}

TEST(JsonExposition, EventsCarriedWithCountsAndRecent) {
  MetricsRegistry r;
  r.counter("rlir_x_total")->add(1);
  EventTrace trace;
  trace.record(EventKind::kRebalance, 16, "ep2");
  const auto json = to_json(r.snapshot(), trace.snapshot());
  EXPECT_NE(json.find("\"events\":{\"counts\":{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rebalance\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"detail\":\"ep2\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"dropped\":0"), std::string::npos) << json;
}

TEST(EventCounters, FoldIntoSnapshotAsCounters) {
  EventTrace trace;
  trace.record(EventKind::kShed, 5);
  trace.record(EventKind::kShed, 7);
  trace.record(EventKind::kConnect);
  MetricsSnapshot snap;
  append_event_counters(snap, trace.snapshot(), {{"instance", "a0"}});
  // One per kind plus the dropped counter.
  ASSERT_EQ(snap.samples.size(), kEventKindCount + 1);
  const auto text = to_prometheus(snap);
  EXPECT_NE(text.find("rlir_events_total{instance=\"a0\",kind=\"shed\"} 2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("rlir_events_total{instance=\"a0\",kind=\"connect\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("rlir_events_dropped_total{instance=\"a0\"} 0"), std::string::npos)
      << text;
}

TEST(ScrapeWire, RoundTripsExactly) {
  MetricsRegistry r;
  r.counter("rlir_c_total", {{"instance", "x"}})->add(123456789);
  r.gauge("rlir_g")->set(-42);
  Histogram* h = r.histogram("rlir_h");
  for (int i = 1; i <= 50; ++i) h->observe(3e3 * i);
  h->observe(0.0);
  EventTrace trace(4);
  for (std::uint64_t i = 0; i < 6; ++i) trace.record(EventKind::kEpochFlush, i, "epoch");
  trace.record(EventKind::kDisconnect, 1, "agent2");

  Scrape scrape{r.snapshot(), trace.snapshot()};
  std::vector<std::uint8_t> wire;
  encode_scrape(wire, scrape);
  EXPECT_EQ(wire.size(), scrape_wire_size(scrape));

  const std::uint8_t* p = wire.data();
  const Scrape decoded = decode_scrape(p, wire.data() + wire.size());
  EXPECT_EQ(p, wire.data() + wire.size());

  ASSERT_EQ(decoded.metrics.samples.size(), scrape.metrics.samples.size());
  for (std::size_t i = 0; i < scrape.metrics.samples.size(); ++i) {
    const auto& a = scrape.metrics.samples[i];
    const auto& b = decoded.metrics.samples[i];
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.labels, b.labels);
    EXPECT_EQ(a.counter, b.counter);
    EXPECT_EQ(a.gauge, b.gauge);
    EXPECT_EQ(a.histogram.bins(), b.histogram.bins());
    EXPECT_EQ(a.histogram.zero_count(), b.histogram.zero_count());
  }
  EXPECT_EQ(decoded.events.counts, scrape.events.counts);
  EXPECT_EQ(decoded.events.dropped, scrape.events.dropped);
  ASSERT_EQ(decoded.events.events.size(), scrape.events.events.size());
  for (std::size_t i = 0; i < scrape.events.events.size(); ++i) {
    EXPECT_EQ(decoded.events.events[i].kind, scrape.events.events[i].kind);
    EXPECT_EQ(decoded.events.events[i].ts_ns, scrape.events.events[i].ts_ns);
    EXPECT_EQ(decoded.events.events[i].value, scrape.events.events[i].value);
    EXPECT_EQ(decoded.events.events[i].detail, scrape.events.events[i].detail);
  }
}

TEST(ScrapeWire, TruncationRejectedAtEveryLength) {
  MetricsRegistry r;
  r.counter("rlir_c_total", {{"instance", "x"}})->add(7);
  r.histogram("rlir_h")->observe(5e4);
  EventTrace trace;
  trace.record(EventKind::kConnect, 1, "ep0");
  std::vector<std::uint8_t> wire;
  encode_scrape(wire, Scrape{r.snapshot(), trace.snapshot()});
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const std::uint8_t* p = wire.data();
    EXPECT_THROW((void)decode_scrape(p, wire.data() + len), std::runtime_error)
        << "prefix of " << len << " bytes decoded";
  }
}

}  // namespace
}  // namespace rlir::obs
