// Unit tests: rli/flow_stats.h — ground truth taps and accuracy reports.
#include <gtest/gtest.h>

#include "rli/flow_stats.h"

namespace rlir::rli {
namespace {

using timebase::TimePoint;

net::Packet delayed_packet(std::uint16_t src_port, std::int64_t delay_ns,
                           net::PacketKind kind = net::PacketKind::kRegular) {
  net::Packet p;
  p.key.src_port = src_port;
  p.injected_at = TimePoint(0);
  p.ts = TimePoint(delay_ns);
  p.kind = kind;
  return p;
}

TEST(GroundTruthTap, RecordsTrueDelaysPerFlow) {
  GroundTruthTap tap;
  tap.on_packet(delayed_packet(1, 100), TimePoint(100));
  tap.on_packet(delayed_packet(1, 300), TimePoint(300));
  tap.on_packet(delayed_packet(2, 500), TimePoint(500));
  EXPECT_EQ(tap.packets_recorded(), 3u);
  ASSERT_EQ(tap.per_flow().size(), 2u);
  for (const auto& [key, stats] : tap.per_flow()) {
    if (key.src_port == 1) {
      EXPECT_DOUBLE_EQ(stats.mean(), 200.0);
      EXPECT_EQ(stats.count(), 2u);
    } else {
      EXPECT_DOUBLE_EQ(stats.mean(), 500.0);
    }
  }
}

TEST(GroundTruthTap, DefaultFilterSkipsNonRegular) {
  GroundTruthTap tap;
  tap.on_packet(delayed_packet(1, 100, net::PacketKind::kCross), TimePoint(100));
  tap.on_packet(delayed_packet(1, 100, net::PacketKind::kReference), TimePoint(100));
  EXPECT_EQ(tap.packets_recorded(), 0u);
}

TEST(GroundTruthTap, CustomFilter) {
  GroundTruthTap tap([](const net::Packet& p) { return p.key.src_port == 9; });
  tap.on_packet(delayed_packet(9, 100), TimePoint(100));
  tap.on_packet(delayed_packet(8, 100), TimePoint(100));
  EXPECT_EQ(tap.packets_recorded(), 1u);
}

FlowStatsMap map_of(std::initializer_list<std::pair<std::uint16_t, std::vector<double>>> init) {
  FlowStatsMap map;
  for (const auto& [port, values] : init) {
    net::FiveTuple key;
    key.src_port = port;
    for (const double v : values) map[key].add(v);
  }
  return map;
}

TEST(AccuracyReport, JoinsAndComputesErrors) {
  const auto truth = map_of({{1, {100.0, 200.0}}, {2, {1000.0}}});
  const auto estimates = map_of({{1, {165.0}}, {2, {900.0}}});
  const auto report = AccuracyReport::compare(truth, estimates);

  ASSERT_EQ(report.flow_count(), 2u);
  EXPECT_EQ(report.unmatched_flows(), 0u);
  for (const auto& s : report.samples()) {
    if (s.key.src_port == 1) {
      EXPECT_DOUBLE_EQ(s.true_mean, 150.0);
      EXPECT_DOUBLE_EQ(s.est_mean, 165.0);
      EXPECT_NEAR(s.mean_rel_error, 0.10, 1e-12);
      EXPECT_TRUE(s.has_stddev_error);  // true stddev 50 > 0
    } else {
      EXPECT_NEAR(s.mean_rel_error, 0.10, 1e-12);
      EXPECT_FALSE(s.has_stddev_error);  // single-packet flow: stddev 0
    }
  }
}

TEST(AccuracyReport, UnmatchedFlowsCounted) {
  const auto truth = map_of({{1, {100.0}}, {2, {200.0}}});
  const auto estimates = map_of({{1, {100.0}}});
  const auto report = AccuracyReport::compare(truth, estimates);
  EXPECT_EQ(report.flow_count(), 1u);
  EXPECT_EQ(report.unmatched_flows(), 1u);
}

TEST(AccuracyReport, MinPacketsThreshold) {
  const auto truth = map_of({{1, {100.0}}, {2, {200.0, 300.0, 400.0}}});
  const auto estimates = map_of({{1, {100.0}}, {2, {300.0}}});
  const auto report = AccuracyReport::compare(truth, estimates, /*min_packets=*/2);
  ASSERT_EQ(report.flow_count(), 1u);
  EXPECT_EQ(report.samples()[0].key.src_port, 2);
}

TEST(AccuracyReport, ZeroTruthFlowsSkipped) {
  const auto truth = map_of({{1, {0.0, 0.0}}});
  const auto estimates = map_of({{1, {5.0}}});
  const auto report = AccuracyReport::compare(truth, estimates);
  EXPECT_EQ(report.flow_count(), 0u);  // relative error undefined
}

TEST(AccuracyReport, CdfsAndMedian) {
  const auto truth = map_of({{1, {100.0}}, {2, {100.0}}, {3, {100.0}}});
  const auto estimates = map_of({{1, {105.0}}, {2, {110.0}}, {3, {120.0}}});
  const auto report = AccuracyReport::compare(truth, estimates);
  const auto cdf = report.mean_error_cdf();
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_NEAR(report.median_mean_error(), 0.10, 1e-12);
  // Single-packet flows: stddev errors undefined everywhere.
  EXPECT_EQ(report.stddev_error_cdf().size(), 0u);
}

TEST(AccuracyReport, StddevCdfUsesOnlyDefinedErrors) {
  const auto truth = map_of({{1, {100.0, 300.0}}, {2, {500.0}}});
  const auto estimates = map_of({{1, {100.0, 200.0}}, {2, {450.0}}});
  const auto report = AccuracyReport::compare(truth, estimates);
  EXPECT_EQ(report.mean_error_cdf().size(), 2u);
  EXPECT_EQ(report.stddev_error_cdf().size(), 1u);  // only flow 1 has stddev
}

}  // namespace
}  // namespace rlir::rli
