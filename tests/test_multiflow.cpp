// Unit tests: baseline/multiflow.h — two-sample NetFlow latency estimation.
#include <gtest/gtest.h>

#include "baseline/multiflow.h"
#include "timebase/clock.h"

namespace rlir::baseline {
namespace {

using timebase::Duration;
using timebase::TimePoint;

net::Packet flow_packet(std::uint16_t port, std::int64_t ts_ns) {
  net::Packet p;
  p.key.src = net::Ipv4Address(10, 0, 0, 1);
  p.key.src_port = port;
  p.ts = TimePoint(ts_ns);
  p.kind = net::PacketKind::kRegular;
  return p;
}

TEST(NetflowTap, RequiresClock) {
  EXPECT_THROW(NetflowTap(trace::FlowmeterConfig{}, nullptr), std::invalid_argument);
}

TEST(NetflowTap, RecordsFirstAndLastTimestamps) {
  timebase::PerfectClock clock;
  NetflowTap tap(trace::FlowmeterConfig{}, &clock);
  tap.on_packet(flow_packet(1, 100), TimePoint(100));
  tap.on_packet(flow_packet(1, 500), TimePoint(500));
  tap.on_packet(flow_packet(1, 900), TimePoint(900));
  const auto& records = tap.records();
  ASSERT_EQ(records.size(), 1u);
  const auto& rec = records.begin()->second;
  EXPECT_EQ(rec.first_ts, TimePoint(100));
  EXPECT_EQ(rec.last_ts, TimePoint(900));
  EXPECT_EQ(rec.packets, 3u);
}

TEST(NetflowTap, IgnoresNonRegular) {
  timebase::PerfectClock clock;
  NetflowTap tap(trace::FlowmeterConfig{}, &clock);
  net::Packet ref = flow_packet(1, 100);
  ref.kind = net::PacketKind::kReference;
  tap.on_packet(ref, TimePoint(100));
  EXPECT_TRUE(tap.records().empty());
}

TEST(MultiflowEstimate, ExactUnderConstantDelay) {
  timebase::PerfectClock clock;
  NetflowTap sender(trace::FlowmeterConfig{}, &clock);
  NetflowTap receiver(trace::FlowmeterConfig{}, &clock);
  constexpr std::int64_t kDelay = 7'777;
  for (const std::uint16_t port : {1, 2, 3}) {
    for (int i = 0; i < 5; ++i) {
      const std::int64_t t = port * 10'000 + i * 1'000;
      sender.on_packet(flow_packet(port, t), TimePoint(t));
      receiver.on_packet(flow_packet(port, t + kDelay), TimePoint(t + kDelay));
    }
  }
  const auto result = multiflow_estimate(sender.records(), receiver.records());
  EXPECT_EQ(result.matched_flows, 3u);
  EXPECT_EQ(result.unmatched_flows, 0u);
  ASSERT_EQ(result.estimates.size(), 3u);
  for (const auto& [key, stats] : result.estimates) {
    EXPECT_DOUBLE_EQ(stats.mean(), static_cast<double>(kDelay));
  }
}

TEST(MultiflowEstimate, AveragesFirstAndLastDeltas) {
  timebase::PerfectClock clock;
  NetflowTap sender(trace::FlowmeterConfig{}, &clock);
  NetflowTap receiver(trace::FlowmeterConfig{}, &clock);
  // First packet delayed 1000, last delayed 3000 => estimate 2000.
  sender.on_packet(flow_packet(1, 0), TimePoint(0));
  sender.on_packet(flow_packet(1, 10'000), TimePoint(10'000));
  receiver.on_packet(flow_packet(1, 1'000), TimePoint(1'000));
  receiver.on_packet(flow_packet(1, 13'000), TimePoint(13'000));
  const auto result = multiflow_estimate(sender.records(), receiver.records());
  ASSERT_EQ(result.estimates.size(), 1u);
  EXPECT_DOUBLE_EQ(result.estimates.begin()->second.mean(), 2'000.0);
}

TEST(MultiflowEstimate, CountsUnmatchedFlows) {
  timebase::PerfectClock clock;
  NetflowTap sender(trace::FlowmeterConfig{}, &clock);
  NetflowTap receiver(trace::FlowmeterConfig{}, &clock);
  sender.on_packet(flow_packet(1, 0), TimePoint(0));
  sender.on_packet(flow_packet(2, 0), TimePoint(0));
  receiver.on_packet(flow_packet(1, 500), TimePoint(500));
  const auto result = multiflow_estimate(sender.records(), receiver.records());
  EXPECT_EQ(result.matched_flows, 1u);
  EXPECT_EQ(result.unmatched_flows, 1u);
}

TEST(MultiflowEstimate, ReceiverClockOffsetShiftsEstimates) {
  timebase::PerfectClock send_clock;
  timebase::FixedOffsetClock recv_clock(Duration::microseconds(1));
  NetflowTap sender(trace::FlowmeterConfig{}, &send_clock);
  NetflowTap receiver(trace::FlowmeterConfig{}, &recv_clock);
  sender.on_packet(flow_packet(1, 0), TimePoint(0));
  receiver.on_packet(flow_packet(1, 500), TimePoint(500));
  const auto result = multiflow_estimate(sender.records(), receiver.records());
  ASSERT_EQ(result.estimates.size(), 1u);
  EXPECT_DOUBLE_EQ(result.estimates.begin()->second.mean(), 1'500.0);
}

TEST(MultiflowEstimate, SingleSampleIsCrudeForVariableDelay) {
  // The weakness the paper cites: two samples cannot capture within-flow
  // delay structure. A flow whose delays ramp 0..9000 (mean 4500) is
  // estimated from first/last only.
  timebase::PerfectClock clock;
  NetflowTap sender(trace::FlowmeterConfig{}, &clock);
  NetflowTap receiver(trace::FlowmeterConfig{}, &clock);
  for (int i = 0; i < 10; ++i) {
    const std::int64_t t = i * 1'000;
    sender.on_packet(flow_packet(1, t), TimePoint(t));
    receiver.on_packet(flow_packet(1, t + i * 1'000), TimePoint(t + i * 1'000));
  }
  const auto result = multiflow_estimate(sender.records(), receiver.records());
  ASSERT_EQ(result.estimates.size(), 1u);
  // (0 + 9000)/2 = 4500 happens to match the mean here, but only the two
  // endpoint samples enter the estimate.
  EXPECT_DOUBLE_EQ(result.estimates.begin()->second.mean(), 4'500.0);
  EXPECT_EQ(result.estimates.begin()->second.count(), 1u);
}

}  // namespace
}  // namespace rlir::baseline
