// Unit tests: trace/flowmeter.h — YAF-like flow aggregation.
#include <gtest/gtest.h>

#include "trace/flowmeter.h"

namespace rlir::trace {
namespace {

using timebase::Duration;
using timebase::TimePoint;

net::Packet packet_at(std::int64_t ts_ns, std::uint16_t src_port = 1000,
                      std::uint32_t bytes = 100) {
  net::Packet p;
  p.ts = TimePoint(ts_ns);
  p.key.src = net::Ipv4Address(10, 0, 0, 1);
  p.key.dst = net::Ipv4Address(10, 0, 0, 2);
  p.key.src_port = src_port;
  p.key.dst_port = 80;
  p.size_bytes = bytes;
  return p;
}

TEST(Flowmeter, AggregatesPerFlow) {
  Flowmeter meter;
  meter.observe(packet_at(100, 1000, 50));
  meter.observe(packet_at(200, 1000, 70));
  meter.observe(packet_at(300, 2000, 90));
  EXPECT_EQ(meter.active_flows(), 2u);
  EXPECT_EQ(meter.total_packets(), 3u);
  EXPECT_EQ(meter.total_bytes(), 210u);

  meter.flush();
  EXPECT_EQ(meter.active_flows(), 0u);
  ASSERT_EQ(meter.exported().size(), 2u);
  // Find the two-packet flow.
  const auto& records = meter.exported();
  const auto it = std::find_if(records.begin(), records.end(),
                               [](const FlowRecord& r) { return r.packets == 2; });
  ASSERT_NE(it, records.end());
  EXPECT_EQ(it->first_ts, TimePoint(100));
  EXPECT_EQ(it->last_ts, TimePoint(200));
  EXPECT_EQ(it->bytes, 120u);
  EXPECT_EQ(it->duration(), Duration(100));
}

TEST(Flowmeter, IdleTimeoutExports) {
  FlowmeterConfig cfg;
  cfg.idle_timeout = Duration::microseconds(10);
  Flowmeter meter(cfg);
  meter.observe(packet_at(0));
  // A different flow arriving far later triggers the idle eviction scan.
  meter.observe(packet_at(50'000, 2000));
  EXPECT_EQ(meter.total_flows_exported(), 1u);
  EXPECT_EQ(meter.active_flows(), 1u);
}

TEST(Flowmeter, ActiveTimeoutRestartsLongFlows) {
  FlowmeterConfig cfg;
  cfg.active_timeout = Duration::microseconds(100);
  cfg.idle_timeout = Duration::seconds(10);  // never idle in this test
  Flowmeter meter(cfg);
  meter.observe(packet_at(0));
  meter.observe(packet_at(50'000));
  meter.observe(packet_at(150'000));  // 150us > active timeout: restart
  EXPECT_EQ(meter.total_flows_exported(), 1u);
  meter.flush();
  ASSERT_EQ(meter.exported().size(), 2u);
  // First record covers the first two packets.
  EXPECT_EQ(meter.exported()[0].packets, 2u);
  // Restarted record covers the third.
  EXPECT_EQ(meter.exported()[1].packets, 1u);
  EXPECT_EQ(meter.exported()[1].first_ts, TimePoint(150'000));
}

TEST(Flowmeter, ExportSinkReceivesRecords) {
  Flowmeter meter;
  std::vector<FlowRecord> sunk;
  meter.set_export_sink([&](const FlowRecord& r) { sunk.push_back(r); });
  meter.observe(packet_at(0));
  meter.flush();
  EXPECT_EQ(sunk.size(), 1u);
  EXPECT_TRUE(meter.exported().empty());  // sink bypasses internal storage
}

TEST(Flowmeter, RejectsTimeTravel) {
  Flowmeter meter;
  meter.observe(packet_at(1000));
  EXPECT_THROW(meter.observe(packet_at(999)), std::logic_error);
}

TEST(Flowmeter, FlushOnEmptyIsSafe) {
  Flowmeter meter;
  meter.flush();
  EXPECT_TRUE(meter.exported().empty());
}

}  // namespace
}  // namespace rlir::trace
