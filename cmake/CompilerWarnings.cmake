# Compiler-flag, warning, and sanitizer conventions shared by every target
# (tests, benches, examples included) via the rlir_options interface library.
# Keep the build warning-free: these flags are conventions, not suggestions.
add_library(rlir_options INTERFACE)

# Release builds pin -O2 (overriding CMake's -O3 default) so perf numbers
# are comparable across machines and CI; Debug keeps -O0 so sanitizer and
# debugger frames stay readable.
#
# Everything is wrapped in $<BUILD_INTERFACE:...>: these are THIS project's
# conventions, and rlir_options is exported with the package (rlir_core
# PUBLIC-links it) — without the wrapper, find_package(rlir) consumers would
# inherit our warning set, our -O2 pin, and (fatally) our -Werror.
target_compile_options(rlir_options INTERFACE
  $<BUILD_INTERFACE:$<$<CXX_COMPILER_ID:GNU,Clang,AppleClang>:-Wall;-Wextra;-Wshadow;-Wpedantic>>
  $<BUILD_INTERFACE:$<$<AND:$<CXX_COMPILER_ID:GNU,Clang,AppleClang>,$<CONFIG:Release>>:-O2>>)

# -Werror rides on rlir_options so it applies to project targets only —
# third-party code fetched in-tree (googletest, google-benchmark) builds with
# its own flags and cannot break the build with warnings we don't own.
if(RLIR_WERROR)
  target_compile_options(rlir_options INTERFACE
    $<BUILD_INTERFACE:$<$<CXX_COMPILER_ID:GNU,Clang,AppleClang>:-Werror>>)
endif()

# Sanitizers apply directory-wide (not via rlir_options) so third-party code
# built in-tree — a FetchContent'd googletest in particular — is instrumented
# too; mixing instrumented tests with an uninstrumented gtest risks ASan
# container-overflow false positives at the boundary. ASan/UBSan and TSan
# cannot be combined in one binary, hence two options and the guard.
if(RLIR_SANITIZE AND RLIR_SANITIZE_THREAD)
  message(FATAL_ERROR "RLIR_SANITIZE and RLIR_SANITIZE_THREAD are mutually exclusive")
endif()
if(RLIR_SANITIZE)
  add_compile_options(
    $<$<CXX_COMPILER_ID:GNU,Clang,AppleClang>:-fsanitize=address,undefined>
    $<$<CXX_COMPILER_ID:GNU,Clang,AppleClang>:-fno-omit-frame-pointer>
    $<$<CXX_COMPILER_ID:GNU,Clang,AppleClang>:-g>)
  add_link_options(
    $<$<CXX_COMPILER_ID:GNU,Clang,AppleClang>:-fsanitize=address,undefined>)
endif()
if(RLIR_SANITIZE_THREAD)
  add_compile_options(
    $<$<CXX_COMPILER_ID:GNU,Clang,AppleClang>:-fsanitize=thread>
    $<$<CXX_COMPILER_ID:GNU,Clang,AppleClang>:-fno-omit-frame-pointer>
    $<$<CXX_COMPILER_ID:GNU,Clang,AppleClang>:-g>)
  add_link_options(
    $<$<CXX_COMPILER_ID:GNU,Clang,AppleClang>:-fsanitize=thread>)
endif()
